// Package service is the HTTP/JSON front-end that turns the library into a
// long-running mapping service: requests resolve to engine cells, execute on
// the shared campaign engine, and answer from the same campaign-scope
// AnalysisCache the batch campaigns use — so a service that has mapped a
// workload family once answers every later request on it from warm
// structures.
//
// Every spgserve process exposes the same surface, so any instance can play
// either cluster role: a worker answers /v1/cells/execute (spec ranges in,
// wire results out, solved on the local pool against the shared cache) and
// self-registers with its coordinator via POST /v1/workers, and a
// coordinator schedules /v1/campaign submissions across its worker registry
// through the engine's work-stealing Dispatcher — health-probed workers pull
// family-affine chunks, failed chunks re-dispatch to other workers before
// any local fallback, with bit-identical results every way.
//
// The serving surface is resilient by construction: request deadlines
// (deadline_ms / X-SPG-Deadline) propagate through the dispatcher into every
// worker request, workers refuse ranges they cannot finish in the remaining
// budget, load shedding answers 429 with Retry-After, per-worker circuit
// breakers surface in /v1/healthz, and StartDrain turns the process
// affinity-ineligible without tripping anyone's breaker. See
// internal/chaos for the deterministic fault layer that tests all of it.
//
// Endpoints (see cmd/spgserve/README.md for curl examples):
//
//	GET    /v1/healthz          liveness, cache statistics, worker registry
//	                            and dispatcher counters
//	POST   /v1/map              map one workload (the period-selection protocol)
//	POST   /v1/campaign         submit a campaign; answers 202 with an id
//	GET    /v1/campaign/{id}    poll status, progress and (when done) result
//	DELETE /v1/campaign/{id}    cancel a running campaign / drop a finished one
//	POST   /v1/cells/execute    worker endpoint: solve a range of cell specs
//	POST   /v1/workers          register a worker (self-registration)
//	GET    /v1/workers          list registered workers and health states
//	DELETE /v1/workers          deregister a worker
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spgcmp/internal/engine"
	"spgcmp/internal/experiments"
	"spgcmp/internal/mapping"
	"spgcmp/internal/streamit"
)

// Config parameterizes a Server. The zero value serves with the process-wide
// campaign cache, an in-process pool executor and default guard rails.
type Config struct {
	// Cache is the campaign-scope analysis cache shared by every request;
	// nil selects experiments.DefaultAnalysisCache().
	Cache *engine.AnalysisCache
	// Executor runs campaign cells; nil selects an engine.PoolExecutor at
	// GOMAXPROCS. When the worker registry is non-empty at submission time,
	// campaigns run through a per-job clone of the cluster dispatcher
	// instead.
	Executor engine.Executor
	// Registry tracks this process's shard workers (seeds from -worker
	// flags plus POST /v1/workers self-registrations). nil creates an empty
	// registry, so any instance can be promoted to coordinator at runtime
	// by registering workers; the caller owns probing (Start/Stop).
	Registry *engine.WorkerRegistry
	// ChunkCells is the dispatcher's chunk size for registry-scheduled
	// campaigns (0 selects engine.DefaultChunkCells).
	ChunkCells int
	// Client issues the dispatcher's worker requests; nil selects
	// http.DefaultClient. cmd/spgserve's -chaos flag swaps in a
	// fault-injecting chaos.Transport here, so the whole cluster scheduling
	// path can be exercised under deterministic faults.
	Client *http.Client
	// OnFallback, when set, observes every dispatched chunk that fell back
	// to the local pool (cmd/spgserve logs them; counters alone lose the
	// triggering errors).
	OnFallback func(start, end int, err error)
	// MaxGrid bounds the accepted CMP dimensions (default 16 per side).
	MaxGrid int
	// MaxCampaignCells rejects campaign submissions larger than this
	// (default 10000 cells).
	MaxCampaignCells int
	// MaxActiveCampaigns bounds concurrently executing campaign jobs
	// (default 4); submissions beyond it answer 429 so a submission loop
	// cannot oversubscribe the executor or pile up result state.
	MaxActiveCampaigns int
	// MaxActiveRanges bounds concurrently executing /v1/cells/execute
	// ranges (default 4); requests beyond it answer 429, which the sending
	// coordinator treats as a worker failure and absorbs via its fallback
	// pool — the worker-side counterpart of MaxActiveCampaigns, so a
	// coordinator with an absurd shard count cannot oversubscribe a worker.
	MaxActiveRanges int
	// MaxActiveMaps bounds concurrently executing /v1/map solves (default
	// 4); requests beyond it answer 429 with a Retry-After, mirroring
	// MaxActiveRanges — a map request is a full period-selection solve, so
	// unbounded concurrency would oversubscribe the pool exactly the way
	// unbounded ranges would.
	MaxActiveMaps int
	// MaxQueuedMaps bounds /v1/map solves waiting for an active slot
	// (default 0: beyond MaxActiveMaps, shed immediately — the original
	// semantics). With a positive queue a short burst waits instead of
	// bouncing; beyond active+queued, 429 + Retry-After still sheds.
	MaxQueuedMaps int
	// MaxActiveBatches bounds concurrently executing /v1/map/batch campaigns
	// (default 2) and MaxQueuedBatches its wait queue (default 2); beyond
	// both, 429 + Retry-After. A batch is a whole campaign, so its slots are
	// scarcer than single-map slots.
	MaxActiveBatches int
	MaxQueuedBatches int
	// MaxBatchCells rejects /v1/map/batch requests larger than this
	// (default 256 requests).
	MaxBatchCells int
	// Store is the content-addressed cell-outcome store consulted by the map
	// and batch paths before any solve and by campaigns before dispatch; nil
	// disables the layer (every request solves).
	Store *engine.ResultStore
	// MinRangeBudget is the admission floor for propagated deadlines on
	// /v1/cells/execute (default 20 ms): a range advertising less remaining
	// budget than this is rejected up front with 503 — the worker cannot
	// plausibly finish it, so burning the pool on work the sender will have
	// abandoned helps nobody.
	MinRangeBudget time.Duration
	// JobTTL bounds how long finished campaign jobs stay pollable (default
	// 1 h; negative disables the time bound). Expired jobs are pruned on
	// the next campaign request.
	JobTTL time.Duration
	// MaxFinishedJobs bounds retained finished jobs, oldest-finished evicted
	// first (default 64; negative disables the count bound).
	MaxFinishedJobs int
	// Now is the clock consulted by job retention; nil selects time.Now.
	// Tests inject a fake to exercise TTL expiry without sleeping.
	Now func() time.Time
}

// Server implements the mapping service over a shared engine and cache.
type Server struct {
	cache       *engine.AnalysisCache
	exec        engine.Executor
	local       engine.Executor     // worker-endpoint executor, always in-process
	pool        engine.PoolExecutor // pool config for per-request shard fallbacks
	registry    *engine.WorkerRegistry
	disp        *engine.Dispatcher       // prototype, cloned per registry-scheduled job
	dispTotals  *engine.DispatcherTotals // process-lifetime scheduling counters
	ranges      *admitGate               // bounds concurrent /v1/cells/execute ranges
	maps        *admitGate               // bounds concurrent /v1/map solves
	batches     *admitGate               // bounds concurrent /v1/map/batch campaigns
	store       *engine.ResultStore      // content-addressed outcome store; nil-safe when absent
	flights     *coalescer               // in-flight /v1/map singleflight table
	minBudget   time.Duration            // admission floor for propagated range deadlines
	draining    atomic.Bool              // graceful drain: refuse new work, stay probe-alive
	maxGrid     int
	maxCells    int
	maxBatch    int
	maxActive   int
	jobTTL      time.Duration
	maxFinished int
	now         func() time.Time

	mu      sync.Mutex
	jobs    map[string]*job // guarded by mu
	running int             // guarded by mu
	nextID  int             // guarded by mu
}

// job tracks one asynchronous campaign from submission to completion.
type job struct {
	id     string
	seq    int // submission order, the retention tie-break for equal finish times
	kind   string
	total  int
	done   atomic.Int64
	cancel context.CancelFunc
	shard  *engine.ShardExecutor // non-nil when the job runs on the legacy static sharder
	disp   *engine.Dispatcher    // non-nil when the job runs on the cluster dispatcher

	// finishedAt is set (under Server.mu) when the campaign stops running;
	// retention reads it under the same lock.
	finishedAt time.Time

	mu     sync.Mutex
	status string // guarded by mu; "running", "done", "failed", "cancelled"
	result any    // guarded by mu
	errMsg string // guarded by mu
}

// New returns a Server ready to serve.
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		cfg.Cache = experiments.DefaultAnalysisCache()
	}
	if cfg.Executor == nil {
		cfg.Executor = &engine.PoolExecutor{}
	}
	if cfg.MaxGrid <= 0 {
		cfg.MaxGrid = 16
	}
	if cfg.MaxCampaignCells <= 0 {
		cfg.MaxCampaignCells = 10_000
	}
	if cfg.MaxActiveCampaigns <= 0 {
		cfg.MaxActiveCampaigns = 4
	}
	if cfg.MaxActiveRanges <= 0 {
		cfg.MaxActiveRanges = 4
	}
	if cfg.MaxActiveMaps <= 0 {
		cfg.MaxActiveMaps = 4
	}
	if cfg.MaxQueuedMaps < 0 {
		cfg.MaxQueuedMaps = 0
	}
	if cfg.MaxActiveBatches <= 0 {
		cfg.MaxActiveBatches = 2
	}
	if cfg.MaxQueuedBatches < 0 {
		cfg.MaxQueuedBatches = 0
	} else if cfg.MaxQueuedBatches == 0 {
		cfg.MaxQueuedBatches = 2
	}
	if cfg.MaxBatchCells <= 0 {
		cfg.MaxBatchCells = 256
	}
	if cfg.MinRangeBudget <= 0 {
		cfg.MinRangeBudget = 20 * time.Millisecond
	}
	if cfg.JobTTL == 0 {
		cfg.JobTTL = time.Hour
	}
	if cfg.MaxFinishedJobs == 0 {
		cfg.MaxFinishedJobs = 64
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Registry == nil {
		cfg.Registry = engine.NewWorkerRegistry(engine.RegistryConfig{})
	}
	// The worker endpoint always solves on an in-process pool: handing it a
	// distributing executor would bounce a received range straight back onto
	// the cluster (at worst, onto this very process). The pool keeps the
	// operator's worker-count configuration — a coordinator's comes from its
	// dispatcher's LocalFallback — so no path silently escalates to
	// GOMAXPROCS.
	var pool engine.PoolExecutor
	local := cfg.Executor
	switch ex := cfg.Executor.(type) {
	case *engine.PoolExecutor:
		pool = *ex
	case *engine.ShardExecutor:
		pool = ex.LocalFallback
		local = &pool
	case *engine.Dispatcher:
		pool = ex.LocalFallback
		local = &pool
	case engine.CampaignExecutor:
		local = &pool
	}
	totals := &engine.DispatcherTotals{}
	return &Server{
		cache:    cfg.Cache,
		exec:     cfg.Executor,
		local:    local,
		pool:     pool,
		registry: cfg.Registry,
		disp: &engine.Dispatcher{
			Registry:      cfg.Registry,
			ChunkCells:    cfg.ChunkCells,
			Client:        cfg.Client,
			LocalFallback: pool,
			OnFallback:    cfg.OnFallback,
			Totals:        totals,
		},
		dispTotals:  totals,
		ranges:      newAdmitGate(cfg.MaxActiveRanges, 0),
		maps:        newAdmitGate(cfg.MaxActiveMaps, cfg.MaxQueuedMaps),
		batches:     newAdmitGate(cfg.MaxActiveBatches, cfg.MaxQueuedBatches),
		store:       cfg.Store,
		flights:     newCoalescer(),
		minBudget:   cfg.MinRangeBudget,
		maxGrid:     cfg.MaxGrid,
		maxCells:    cfg.MaxCampaignCells,
		maxBatch:    cfg.MaxBatchCells,
		maxActive:   cfg.MaxActiveCampaigns,
		jobTTL:      cfg.JobTTL,
		maxFinished: cfg.MaxFinishedJobs,
		now:         cfg.Now,
		jobs:        make(map[string]*job),
	}
}

// StartDrain puts the server into graceful-drain mode: new work — map
// solves, campaign submissions and cell ranges — answers 503 so senders
// re-route immediately, while /v1/healthz keeps answering 200 (status
// "draining") so a coordinator's probes never mistake the drain for a crash
// and trip the circuit breaker. In-flight requests are unaffected; the
// process-level shutdown (http.Server.Shutdown in cmd/spgserve) waits for
// them. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/map", s.handleMap)
	mux.HandleFunc("POST /v1/map/batch", s.handleMapBatch)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaignSubmit)
	mux.HandleFunc("GET /v1/campaign/{id}", s.handleCampaignStatus)
	mux.HandleFunc("DELETE /v1/campaign/{id}", s.handleCampaignDelete)
	mux.HandleFunc("POST /v1/cells/execute", s.handleCellsExecute)
	mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
	mux.HandleFunc("GET /v1/workers", s.handleWorkerList)
	mux.HandleFunc("DELETE /v1/workers", s.handleWorkerDeregister)
	return mux
}

// --- JSON wire types ---

type errorResponse struct {
	Error string `json:"error"`
}

type healthzResponse struct {
	Status string            `json:"status"`
	Cache  engine.CacheStats `json:"cache"`
	// ResultStore is the content-addressed outcome store's snapshot, present
	// when the store is enabled.
	ResultStore *engine.ResultStoreStats `json:"result_store,omitempty"`
	// Coalescing counts the map path's singleflight traffic: flights led
	// (each at most one solve) and requests answered by an existing flight.
	Coalescing coalesceStats `json:"coalescing"`
	// Workers is the worker registry's health snapshot (coordinators only).
	Workers []engine.WorkerInfo `json:"workers,omitempty"`
	// Dispatcher aggregates cluster-scheduling counters across every
	// campaign this process has coordinated.
	Dispatcher *engine.DispatcherStats `json:"dispatcher,omitempty"`
}

// workerRequest names one worker for POST/DELETE /v1/workers. Draining is
// the graceful-shutdown announcement: a worker POSTs {url, draining:true}
// when it receives SIGTERM, which keeps it registered (and probe-alive) but
// removes it from chunk placement until it re-registers plainly or
// deregisters.
type workerRequest struct {
	URL      string `json:"url"`
	Draining bool   `json:"draining,omitempty"`
}

type workersResponse struct {
	Workers []engine.WorkerInfo `json:"workers"`
}

// workloadRef names one workload in a /v1/map request: exactly one of
// StreamIt (a Table 1 application name, optionally rescaled to CCR; 0 keeps
// the original) or Random (a seeded random SPG). It is the request shape
// only — resolution lowers it onto an engine.Cell (whose engine.WorkloadSpec
// is the declarative wire identity used across the cluster).
type workloadRef struct {
	StreamIt string     `json:"streamit,omitempty"`
	CCR      float64    `json:"ccr,omitempty"`
	Random   *randomRef `json:"random,omitempty"`
}

// randomRef identifies one generated random SPG; the same values always
// regenerate the identical graph.
type randomRef struct {
	N         int     `json:"n"`
	Elevation int     `json:"elevation"`
	Seed      int64   `json:"seed"`
	CCR       float64 `json:"ccr"`
}

type mapRequest struct {
	Workload workloadRef `json:"workload"`
	P        int         `json:"p"`
	Q        int         `json:"q"`
	Seed     int64       `json:"seed"`
	// DeadlineMS is the client's time budget in milliseconds; past it the
	// request answers 504 instead of a result. The X-SPG-Deadline header is
	// an equivalent spelling (the body field wins when both are set).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

type mapResponse struct {
	Key      string                     `json:"key"`
	Feasible bool                       `json:"feasible"`
	Result   experiments.InstanceResult `json:"result"`
	Best     string                     `json:"best,omitempty"`
	// Mapping is the winning heuristic's placement (the wire form of
	// mapping.Mapping): stage allocation, per-core DVFS speeds and any
	// pinned routes — the actionable half of the answer.
	Mapping *mapping.WireMapping `json:"mapping,omitempty"`
	// Error is set only inside a batch response, where one failed item must
	// not fail its siblings; the single-request path answers 500 instead.
	Error string `json:"error,omitempty"`
}

type campaignRequest struct {
	StreamIt *streamItCampaignRequest `json:"streamit,omitempty"`
	Random   *randomCampaignRequest   `json:"random,omitempty"`
	// Workers optionally schedules the campaign across an explicit worker
	// list (base URLs) through an ephemeral dispatcher, ignoring the
	// process registry; empty uses the registry (when it has workers) or
	// this process's executor. ChunkCells overrides the dispatcher chunk
	// size for this campaign; the legacy Shards field is honored as "split
	// into this many chunks".
	Workers    []string `json:"workers,omitempty"`
	Shards     int      `json:"shards,omitempty"`
	ChunkCells int      `json:"chunk_cells,omitempty"`
	// DeadlineMS bounds the whole campaign in milliseconds: the budget
	// flows through the dispatcher into every worker request (workers
	// reject ranges they cannot finish in the remainder), and a campaign
	// that outlives it fails with "deadline exceeded". The X-SPG-Deadline
	// header is an equivalent spelling (the body field wins).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

type streamItCampaignRequest struct {
	P    int      `json:"p"`
	Q    int      `json:"q"`
	Apps []string `json:"apps,omitempty"` // nil = full suite
	Seed int64    `json:"seed"`
}

type randomCampaignRequest struct {
	N             int     `json:"n"`
	P             int     `json:"p"`
	Q             int     `json:"q"`
	CCR           float64 `json:"ccr"`
	MinElevation  int     `json:"min_elevation,omitempty"`
	MaxElevation  int     `json:"max_elevation"`
	GraphsPerElev int     `json:"graphs_per_elev,omitempty"`
	Seed          int64   `json:"seed"`
}

type campaignSubmitResponse struct {
	ID        string `json:"id"`
	StatusURL string `json:"status_url"`
	Total     int    `json:"total"`
}

type campaignStatusResponse struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Status string `json:"status"`
	Done   int64  `json:"done"`
	Total  int    `json:"total"`
	// Redispatches counts chunks that failed on one worker and were served
	// by a different one — recovered inside the cluster, not locally.
	Redispatches int64 `json:"redispatches,omitempty"`
	// LocalFallbacks counts chunks (dispatcher jobs) or ranges (legacy
	// static-shard jobs) re-executed on the coordinator's local pool after
	// every healthy worker failed them. Bit-identical results either way.
	LocalFallbacks int64 `json:"local_fallbacks,omitempty"`
	// Steals counts chunks served by a worker other than their
	// cache-affinity owner (idle workers evening out load).
	Steals int64 `json:"steals,omitempty"`
	// Retries counts remote dispatch retries this campaign consumed from
	// its RetryBudget; RetryBudget is the campaign's total allowance.
	Retries     int64 `json:"retries,omitempty"`
	RetryBudget int64 `json:"retry_budget,omitempty"`
	// WorkerChunks attributes this campaign's chunks to the workers that
	// served them.
	WorkerChunks map[string]int64 `json:"worker_chunks,omitempty"`
	// Fallbacks is the deprecated alias of LocalFallbacks, kept for
	// pre-scheduler clients.
	Fallbacks int64  `json:"fallbacks,omitempty"`
	Result    any    `json:"result,omitempty"`
	Error     string `json:"error,omitempty"`
}

// --- handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeShedError answers a load-shedding rejection with a Retry-After hint
// (RFC 9110 §10.2.3) so well-behaved clients back off instead of hammering.
func writeShedError(w http.ResponseWriter, code, retryAfterSeconds int, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	writeError(w, code, format, args...)
}

// resolveDeadline merges the two spellings of a request deadline — the JSON
// body's deadline_ms and the X-SPG-Deadline header — into one budget; the
// body field wins when both are present.
func resolveDeadline(h http.Header, bodyMS int64) (time.Duration, bool, error) {
	if bodyMS < 0 {
		return 0, false, fmt.Errorf("deadline_ms %d is negative", bodyMS)
	}
	if bodyMS > 0 {
		return time.Duration(bodyMS) * time.Millisecond, true, nil
	}
	return engine.ParseDeadlineHeader(h)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{Status: "ok", Cache: s.cache.Stats(), Coalescing: s.flights.stats()}
	if s.store.Enabled() {
		st := s.store.Stats()
		resp.ResultStore = &st
	}
	if s.draining.Load() {
		// Still 200: a draining worker is alive and finishing in-flight work;
		// answering an error here would trip the coordinator's breaker and
		// turn every graceful restart into a spurious death.
		resp.Status = "draining"
	}
	resp.Workers = s.registry.Workers()
	if st := s.dispTotals.Stats(); st.Chunks > 0 || len(resp.Workers) > 0 {
		resp.Dispatcher = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkerRegister adds a worker to the registry — how workers started
// with -register-with announce themselves, and how an operator promotes any
// running instance to coordinator. Registration is idempotent (workers
// re-announce every probe interval as a keep-alive) and revives dead
// entries, so a restarted worker rejoins ahead of the next health probe.
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req workerRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if err := s.registry.Register(req.URL); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Draining {
		// Register first, then mark: registration clears any stale draining
		// flag, so the order makes {draining:true} land deterministically.
		s.registry.MarkDraining(req.URL, true)
	}
	writeJSON(w, http.StatusOK, workersResponse{Workers: s.registry.Workers()})
}

func (s *Server) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workersResponse{Workers: s.registry.Workers()})
}

func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	var req workerRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if !s.registry.Deregister(req.URL) {
		writeError(w, http.StatusNotFound, "unknown worker %q", req.URL)
		return
	}
	writeJSON(w, http.StatusOK, workersResponse{Workers: s.registry.Workers()})
}

func (s *Server) checkGrid(p, q int) error {
	if p < 1 || q < 1 || p > s.maxGrid || q > s.maxGrid {
		return fmt.Errorf("grid %dx%d outside [1, %d] per side", p, q, s.maxGrid)
	}
	return nil
}

// cellFor resolves a workload spec to its engine cell.
func (s *Server) cellFor(spec workloadRef, p, q int, seed int64) (engine.Cell, error) {
	switch {
	case spec.StreamIt != "" && spec.Random != nil:
		return engine.Cell{}, fmt.Errorf("workload names both streamit and random")
	case spec.StreamIt != "":
		a, err := streamit.ByName(spec.StreamIt)
		if err != nil {
			return engine.Cell{}, err
		}
		ccr := spec.CCR
		if ccr == 0 {
			ccr = a.CCR
		}
		if ccr < 0 {
			return engine.Cell{}, fmt.Errorf("ccr %g is negative", ccr)
		}
		return experiments.NewStreamItCell(a, ccr, p, q, seed), nil
	case spec.Random != nil:
		rw := spec.Random
		if rw.N < 2 {
			return engine.Cell{}, fmt.Errorf("random workload needs n >= 2, got %d", rw.N)
		}
		if rw.Elevation < 1 {
			return engine.Cell{}, fmt.Errorf("random workload needs elevation >= 1, got %d", rw.Elevation)
		}
		if rw.CCR < 0 {
			return engine.Cell{}, fmt.Errorf("ccr %g is negative", rw.CCR)
		}
		return experiments.NewRandomCell(rw.N, rw.Elevation, rw.Seed, rw.CCR, p, q), nil
	default:
		return engine.Cell{}, fmt.Errorf("workload names neither streamit nor random")
	}
}

// handleCellsExecute is the shard-worker endpoint: a coordinator's
// ShardExecutor POSTs a range of cell specs, this process solves them on its
// local pool against the shared campaign cache, and answers one wire result
// per cell in request order. Specs are validated up front so a malformed
// range is rejected whole (the coordinator falls back to local execution)
// rather than half-executed. A propagated DeadlineHeader budget is honored
// two ways: a range that cannot plausibly finish (budget below
// MinRangeBudget) is refused outright with 503, and an admitted range solves
// under a context bounded by the budget so an overrun stops at the deadline
// instead of burning the pool on an answer the sender has abandoned.
func (s *Server) handleCellsExecute(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeShedError(w, http.StatusServiceUnavailable, 1, "draining: not accepting new ranges")
		return
	}
	budget, hasBudget, err := engine.ParseDeadlineHeader(r.Header)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if hasBudget && budget < s.minBudget {
		writeShedError(w, http.StatusServiceUnavailable, 1, "remaining budget %v below the %v admission floor", budget, s.minBudget)
		return
	}
	var req engine.ExecuteCellsRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(req.Cells) == 0 {
		writeError(w, http.StatusBadRequest, "bad request: no cells")
		return
	}
	if len(req.Cells) > s.maxCells {
		writeError(w, http.StatusBadRequest, "bad request: range has %d cells, limit %d", len(req.Cells), s.maxCells)
		return
	}
	for _, spec := range req.Cells {
		if err := spec.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if err := s.checkGrid(spec.P, spec.Q); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: cell %q: %v", spec.Key, err)
			return
		}
	}
	// Admission control: each range runs a full local pool, so unbounded
	// concurrent ranges would oversubscribe the worker the same way
	// unbounded campaigns would the coordinator. The sender treats 429 as a
	// worker failure and absorbs the range in its fallback pool (the range
	// gate has no queue — a queued range would burn its sender's deadline).
	if err := s.ranges.acquire(nil); err != nil {
		writeShedError(w, http.StatusTooManyRequests, 1, "%d cell ranges already executing; retry later", s.ranges.capacity())
		return
	}
	defer s.ranges.release()
	ctx := r.Context()
	if hasBudget {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}
	results, err := engine.ExecuteSpecs(ctx, s.local, req.Cells, s.cache, s.store)
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the range finished")
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "execute failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, engine.ExecuteCellsResponse{Results: results})
}

// handleCampaignSubmit validates a campaign, registers a job and runs it
// asynchronously on the shared executor; the response is the id to poll.
func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeShedError(w, http.StatusServiceUnavailable, 1, "draining: not accepting new campaigns")
		return
	}
	var req campaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	budget, hasBudget, err := resolveDeadline(r.Header, req.DeadlineMS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var (
		kind   string
		cells  []engine.Cell
		reduce func([]engine.CellResult) (any, error)
	)
	switch {
	case req.StreamIt != nil && req.Random != nil:
		writeError(w, http.StatusBadRequest, "bad request: campaign names both streamit and random")
		return
	case req.StreamIt != nil:
		c := req.StreamIt
		if err := s.checkGrid(c.P, c.Q); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		var apps []streamit.App
		if c.Apps != nil {
			for _, name := range c.Apps {
				a, err := streamit.ByName(name)
				if err != nil {
					writeError(w, http.StatusBadRequest, "bad request: %v", err)
					return
				}
				apps = append(apps, a)
			}
			if len(apps) == 0 {
				writeError(w, http.StatusBadRequest, "bad request: empty application list")
				return
			}
		}
		kind = "streamit"
		cells = experiments.StreamItCells(c.P, c.Q, apps, c.Seed)
		reduce = func(results []engine.CellResult) (any, error) {
			return experiments.ReduceStreamIt(c.P, c.Q, apps, results)
		}
	case req.Random != nil:
		c := req.Random
		if err := s.checkGrid(c.P, c.Q); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if c.N < 2 {
			writeError(w, http.StatusBadRequest, "bad request: random campaign needs n >= 2, got %d", c.N)
			return
		}
		cfg := experiments.RandomConfig{
			N: c.N, P: c.P, Q: c.Q, CCR: c.CCR,
			MinElevation: c.MinElevation, MaxElevation: c.MaxElevation,
			GraphsPerElev: c.GraphsPerElev, Seed: c.Seed,
			Cache: s.cache,
		}
		// Admission control before enumeration: NumCells is arithmetic, so an
		// absurd elevation range is rejected without materializing anything.
		if n := cfg.NumCells(); n > int64(s.maxCells) {
			writeError(w, http.StatusBadRequest, "bad request: campaign has %d cells, limit %d", n, s.maxCells)
			return
		}
		var err error
		cells, err = experiments.RandomCells(cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		kind = "random"
		reduce = func(results []engine.CellResult) (any, error) {
			return experiments.ReduceRandom(cfg, results)
		}
	default:
		writeError(w, http.StatusBadRequest, "bad request: campaign names neither streamit nor random")
		return
	}
	if len(cells) > s.maxCells {
		writeError(w, http.StatusBadRequest, "bad request: campaign has %d cells, limit %d", len(cells), s.maxCells)
		return
	}
	if req.Shards < 0 || req.ChunkCells < 0 {
		writeError(w, http.StatusBadRequest, "bad request: shards=%d chunk_cells=%d must not be negative", req.Shards, req.ChunkCells)
		return
	}
	if req.Shards > 0 && len(req.Workers) == 0 && s.registry.Len() == 0 {
		writeError(w, http.StatusBadRequest, "bad request: shards=%d needs a non-empty worker list", req.Shards)
		return
	}
	// The dispatcher chunk size for this job: an explicit chunk_cells wins;
	// the legacy shards field translates to "split into that many chunks".
	chunk := req.ChunkCells
	if chunk == 0 && req.Shards > 0 {
		chunk = (len(cells) + req.Shards - 1) / req.Shards
	}
	ex := s.exec
	var shard *engine.ShardExecutor
	var disp *engine.Dispatcher
	switch {
	case len(req.Workers) > 0:
		// An explicit worker list runs on an ephemeral registry: no probing,
		// health learned from dispatch outcomes alone, discarded with the job.
		reg := engine.NewWorkerRegistry(engine.RegistryConfig{})
		for _, u := range req.Workers {
			if err := reg.Register(u); err != nil {
				writeError(w, http.StatusBadRequest, "bad request: %v", err)
				return
			}
		}
		disp = s.disp.Clone()
		disp.Registry = reg
	case s.registry.Len() > 0:
		// Registry-scheduled: a per-job clone of the cluster dispatcher, so
		// the job's status reports its own counters while the shared Totals
		// keep the process-lifetime view for /v1/healthz.
		disp = s.disp.Clone()
	default:
		switch e := s.exec.(type) {
		case *engine.Dispatcher:
			disp = e.Clone()
		case *engine.ShardExecutor:
			// Legacy static sharder: each job still runs on a fresh clone so
			// its fallback count is per-campaign.
			shard = e.Clone()
			ex = shard
		}
	}
	if disp != nil {
		if chunk > 0 {
			disp.ChunkCells = chunk
		}
		ex = disp
	}

	s.mu.Lock()
	s.pruneJobsLocked()
	if s.running >= s.maxActive {
		s.mu.Unlock()
		writeShedError(w, http.StatusTooManyRequests, 1, "%d campaigns already running, limit %d; retry later", s.maxActive, s.maxActive)
		return
	}
	//spglint:ignore ctxflow async campaign outlives its submitting request; cancelled via DELETE /v1/campaign/{id}
	ctx, cancel := context.WithCancel(context.Background())
	if hasBudget {
		// The campaign deadline layers over the cancellation context, so the
		// budget flows through the dispatcher into every worker request (each
		// postCellRange stamps the remainder into DeadlineHeader) and an
		// overrunning campaign fails with "deadline exceeded".
		dctx, dcancel := context.WithTimeout(ctx, budget)
		base := cancel
		ctx, cancel = dctx, func() { dcancel(); base() }
	}
	s.running++
	s.nextID++
	j := &job{id: fmt.Sprintf("c%d", s.nextID), seq: s.nextID, kind: kind, total: len(cells), status: "running", cancel: cancel, shard: shard, disp: disp}
	s.jobs[j.id] = j
	s.mu.Unlock()

	go s.runCampaign(ctx, ex, j, cells, reduce)

	writeJSON(w, http.StatusAccepted, campaignSubmitResponse{
		ID:        j.id,
		StatusURL: "/v1/campaign/" + j.id,
		Total:     j.total,
	})
}

func (s *Server) runCampaign(ctx context.Context, ex engine.Executor, j *job, cells []engine.Cell, reduce func([]engine.CellResult) (any, error)) {
	results, err := engine.Run(ctx, ex, engine.Campaign{
		Cells:  cells,
		Cache:  s.cache,
		Store:  s.store,
		OnCell: func(engine.CellResult) { j.done.Add(1) },
	})
	var result any
	if err == nil {
		result, err = reduce(results)
	}
	// Release the active-campaign slot before the job turns visible as
	// finished, so a poller that observes "done" can immediately submit the
	// next campaign without racing a 429.
	s.mu.Lock()
	s.running--
	j.finishedAt = s.now()
	s.mu.Unlock()
	j.cancel() // release the context now that the run is over
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		j.status = "failed"
		j.errMsg = "deadline exceeded"
	case errors.Is(err, context.Canceled):
		j.status = "cancelled"
		j.errMsg = "cancelled"
	case err != nil:
		j.status = "failed"
		j.errMsg = err.Error()
	default:
		j.status = "done"
		j.result = result
	}
}

// pruneJobsLocked enforces the finished-job retention bounds: jobs older
// than the TTL are dropped, and beyond MaxFinishedJobs the oldest-finished
// go first. Running jobs are never pruned. Callers hold s.mu.
func (s *Server) pruneJobsLocked() {
	now := s.now()
	var finished []*job
	for id, j := range s.jobs {
		if j.finishedAt.IsZero() {
			continue
		}
		if s.jobTTL > 0 && now.Sub(j.finishedAt) > s.jobTTL {
			delete(s.jobs, id)
			continue
		}
		finished = append(finished, j)
	}
	if s.maxFinished > 0 && len(finished) > s.maxFinished {
		sort.Slice(finished, func(i, k int) bool {
			if !finished[i].finishedAt.Equal(finished[k].finishedAt) {
				return finished[i].finishedAt.Before(finished[k].finishedAt)
			}
			// Equal finish times (coarse or injected clocks): evict the
			// earlier submission, deterministically.
			return finished[i].seq < finished[k].seq
		})
		for _, j := range finished[:len(finished)-s.maxFinished] {
			delete(s.jobs, j.id)
		}
	}
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	s.pruneJobsLocked()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	j.mu.Lock()
	resp := campaignStatusResponse{
		ID:     j.id,
		Kind:   j.kind,
		Status: j.status,
		Done:   j.done.Load(),
		Total:  j.total,
		Result: j.result,
		Error:  j.errMsg,
	}
	j.mu.Unlock()
	if j.disp != nil {
		st := j.disp.Stats()
		resp.Redispatches = st.Redispatches
		resp.LocalFallbacks = st.LocalFallbacks
		resp.Steals = st.Steals
		resp.Retries = st.Retries
		resp.RetryBudget = st.RetryBudget
		resp.WorkerChunks = st.WorkerChunks
		resp.Fallbacks = st.LocalFallbacks
	} else if j.shard != nil {
		resp.LocalFallbacks = j.shard.Fallbacks()
		resp.Fallbacks = j.shard.Fallbacks()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCampaignDelete cancels a running campaign (the engine's executors
// honor context cancellation: in-flight cells drain, unstarted cells never
// run, and the job turns "cancelled") or drops a finished one from the job
// table immediately.
func (s *Server) handleCampaignDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	running := j != nil && j.finishedAt.IsZero()
	if j != nil && !running {
		delete(s.jobs, id)
	}
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	if running {
		j.cancel()
		writeJSON(w, http.StatusAccepted, campaignStatusResponse{ID: j.id, Kind: j.kind, Status: "cancelling", Done: j.done.Load(), Total: j.total})
		return
	}
	j.mu.Lock()
	status := j.status
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, campaignStatusResponse{ID: j.id, Kind: j.kind, Status: status, Done: j.done.Load(), Total: j.total})
}
