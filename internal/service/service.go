// Package service is the HTTP/JSON front-end that turns the library into a
// long-running mapping service: requests resolve to engine cells, execute on
// the shared campaign engine, and answer from the same campaign-scope
// AnalysisCache the batch campaigns use — so a service that has mapped a
// workload family once answers every later request on it from warm
// structures.
//
// Endpoints (see cmd/spgserve/README.md for curl examples):
//
//	GET  /v1/healthz          liveness plus campaign-cache statistics
//	POST /v1/map              map one workload (the period-selection protocol)
//	POST /v1/campaign         submit a campaign; answers 202 with an id
//	GET  /v1/campaign/{id}    poll status, progress and (when done) result
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"spgcmp/internal/engine"
	"spgcmp/internal/experiments"
	"spgcmp/internal/streamit"
)

// Config parameterizes a Server. The zero value serves with the process-wide
// campaign cache, an in-process pool executor and default guard rails.
type Config struct {
	// Cache is the campaign-scope analysis cache shared by every request;
	// nil selects experiments.DefaultAnalysisCache().
	Cache *engine.AnalysisCache
	// Executor runs campaign cells; nil selects an engine.PoolExecutor at
	// GOMAXPROCS.
	Executor engine.Executor
	// MaxGrid bounds the accepted CMP dimensions (default 16 per side).
	MaxGrid int
	// MaxCampaignCells rejects campaign submissions larger than this
	// (default 10000 cells).
	MaxCampaignCells int
	// MaxActiveCampaigns bounds concurrently executing campaign jobs
	// (default 4); submissions beyond it answer 429 so a submission loop
	// cannot oversubscribe the executor or pile up result state.
	MaxActiveCampaigns int
}

// Server implements the mapping service over a shared engine and cache.
type Server struct {
	cache     *engine.AnalysisCache
	exec      engine.Executor
	maxGrid   int
	maxCells  int
	maxActive int

	mu      sync.Mutex
	jobs    map[string]*job
	running int
	nextID  int
}

// job tracks one asynchronous campaign from submission to completion.
type job struct {
	id    string
	kind  string
	total int
	done  atomic.Int64

	mu     sync.Mutex
	status string // "running", "done", "failed"
	result any
	errMsg string
}

// New returns a Server ready to serve.
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		cfg.Cache = experiments.DefaultAnalysisCache()
	}
	if cfg.Executor == nil {
		cfg.Executor = &engine.PoolExecutor{}
	}
	if cfg.MaxGrid <= 0 {
		cfg.MaxGrid = 16
	}
	if cfg.MaxCampaignCells <= 0 {
		cfg.MaxCampaignCells = 10_000
	}
	if cfg.MaxActiveCampaigns <= 0 {
		cfg.MaxActiveCampaigns = 4
	}
	return &Server{
		cache:     cfg.Cache,
		exec:      cfg.Executor,
		maxGrid:   cfg.MaxGrid,
		maxCells:  cfg.MaxCampaignCells,
		maxActive: cfg.MaxActiveCampaigns,
		jobs:      make(map[string]*job),
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/map", s.handleMap)
	mux.HandleFunc("POST /v1/campaign", s.handleCampaignSubmit)
	mux.HandleFunc("GET /v1/campaign/{id}", s.handleCampaignStatus)
	return mux
}

// --- JSON wire types ---

type errorResponse struct {
	Error string `json:"error"`
}

type healthzResponse struct {
	Status string            `json:"status"`
	Cache  engine.CacheStats `json:"cache"`
}

// WorkloadSpec names one workload: exactly one of StreamIt (a Table 1
// application name, optionally rescaled to CCR; 0 keeps the original) or
// Random (a seeded random SPG).
type WorkloadSpec struct {
	StreamIt string          `json:"streamit,omitempty"`
	CCR      float64         `json:"ccr,omitempty"`
	Random   *RandomWorkload `json:"random,omitempty"`
}

// RandomWorkload identifies one generated random SPG; the same values always
// regenerate the identical graph.
type RandomWorkload struct {
	N         int     `json:"n"`
	Elevation int     `json:"elevation"`
	Seed      int64   `json:"seed"`
	CCR       float64 `json:"ccr"`
}

type mapRequest struct {
	Workload WorkloadSpec `json:"workload"`
	P        int          `json:"p"`
	Q        int          `json:"q"`
	Seed     int64        `json:"seed"`
}

type mapResponse struct {
	Key      string                     `json:"key"`
	Feasible bool                       `json:"feasible"`
	Result   experiments.InstanceResult `json:"result"`
	Best     string                     `json:"best,omitempty"`
}

type campaignRequest struct {
	StreamIt *streamItCampaignRequest `json:"streamit,omitempty"`
	Random   *randomCampaignRequest   `json:"random,omitempty"`
}

type streamItCampaignRequest struct {
	P    int      `json:"p"`
	Q    int      `json:"q"`
	Apps []string `json:"apps,omitempty"` // nil = full suite
	Seed int64    `json:"seed"`
}

type randomCampaignRequest struct {
	N             int     `json:"n"`
	P             int     `json:"p"`
	Q             int     `json:"q"`
	CCR           float64 `json:"ccr"`
	MinElevation  int     `json:"min_elevation,omitempty"`
	MaxElevation  int     `json:"max_elevation"`
	GraphsPerElev int     `json:"graphs_per_elev,omitempty"`
	Seed          int64   `json:"seed"`
}

type campaignSubmitResponse struct {
	ID        string `json:"id"`
	StatusURL string `json:"status_url"`
	Total     int    `json:"total"`
}

type campaignStatusResponse struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Status string `json:"status"`
	Done   int64  `json:"done"`
	Total  int    `json:"total"`
	Result any    `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// --- handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok", Cache: s.cache.Stats()})
}

func (s *Server) checkGrid(p, q int) error {
	if p < 1 || q < 1 || p > s.maxGrid || q > s.maxGrid {
		return fmt.Errorf("grid %dx%d outside [1, %d] per side", p, q, s.maxGrid)
	}
	return nil
}

// cellFor resolves a workload spec to its engine cell.
func (s *Server) cellFor(spec WorkloadSpec, p, q int, seed int64) (engine.Cell, error) {
	switch {
	case spec.StreamIt != "" && spec.Random != nil:
		return engine.Cell{}, fmt.Errorf("workload names both streamit and random")
	case spec.StreamIt != "":
		a, err := streamit.ByName(spec.StreamIt)
		if err != nil {
			return engine.Cell{}, err
		}
		ccr := spec.CCR
		if ccr == 0 {
			ccr = a.CCR
		}
		if ccr < 0 {
			return engine.Cell{}, fmt.Errorf("ccr %g is negative", ccr)
		}
		return experiments.NewStreamItCell(a, ccr, p, q, seed), nil
	case spec.Random != nil:
		rw := spec.Random
		if rw.N < 2 {
			return engine.Cell{}, fmt.Errorf("random workload needs n >= 2, got %d", rw.N)
		}
		if rw.Elevation < 1 {
			return engine.Cell{}, fmt.Errorf("random workload needs elevation >= 1, got %d", rw.Elevation)
		}
		if rw.CCR < 0 {
			return engine.Cell{}, fmt.Errorf("ccr %g is negative", rw.CCR)
		}
		return experiments.NewRandomCell(rw.N, rw.Elevation, rw.Seed, rw.CCR, p, q), nil
	default:
		return engine.Cell{}, fmt.Errorf("workload names neither streamit nor random")
	}
}

// handleMap answers one workload synchronously: resolve the cell, solve it
// through the shared cache (a repeated request replays from warm analyses),
// return the period-selection result. Infeasible workloads — no heuristic
// succeeds even at the 1 s starting period — answer 422 with feasible=false
// and the failing outcomes, distinguishing "the service cannot map this"
// from request errors.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	var req mapRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if err := s.checkGrid(req.P, req.Q); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	cell, err := s.cellFor(req.Workload, req.P, req.Q, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	res := engine.Solve(cell, s.cache)
	if res.Err != nil {
		writeError(w, http.StatusInternalServerError, "workload build failed: %v", res.Err)
		return
	}
	resp := mapResponse{Key: res.Key, Feasible: res.Feasible, Result: res.Result}
	if !res.Feasible {
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	best := res.Result.BestEnergy()
	for _, o := range res.Result.Outcomes {
		if o.OK && o.Energy == best {
			resp.Best = o.Heuristic
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCampaignSubmit validates a campaign, registers a job and runs it
// asynchronously on the shared executor; the response is the id to poll.
func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var (
		kind   string
		cells  []engine.Cell
		reduce func([]engine.CellResult) (any, error)
	)
	switch {
	case req.StreamIt != nil && req.Random != nil:
		writeError(w, http.StatusBadRequest, "bad request: campaign names both streamit and random")
		return
	case req.StreamIt != nil:
		c := req.StreamIt
		if err := s.checkGrid(c.P, c.Q); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		var apps []streamit.App
		if c.Apps != nil {
			for _, name := range c.Apps {
				a, err := streamit.ByName(name)
				if err != nil {
					writeError(w, http.StatusBadRequest, "bad request: %v", err)
					return
				}
				apps = append(apps, a)
			}
			if len(apps) == 0 {
				writeError(w, http.StatusBadRequest, "bad request: empty application list")
				return
			}
		}
		kind = "streamit"
		cells = experiments.StreamItCells(c.P, c.Q, apps, c.Seed)
		reduce = func(results []engine.CellResult) (any, error) {
			return experiments.ReduceStreamIt(c.P, c.Q, apps, results)
		}
	case req.Random != nil:
		c := req.Random
		if err := s.checkGrid(c.P, c.Q); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if c.N < 2 {
			writeError(w, http.StatusBadRequest, "bad request: random campaign needs n >= 2, got %d", c.N)
			return
		}
		cfg := experiments.RandomConfig{
			N: c.N, P: c.P, Q: c.Q, CCR: c.CCR,
			MinElevation: c.MinElevation, MaxElevation: c.MaxElevation,
			GraphsPerElev: c.GraphsPerElev, Seed: c.Seed,
			Cache: s.cache,
		}
		// Admission control before enumeration: NumCells is arithmetic, so an
		// absurd elevation range is rejected without materializing anything.
		if n := cfg.NumCells(); n > int64(s.maxCells) {
			writeError(w, http.StatusBadRequest, "bad request: campaign has %d cells, limit %d", n, s.maxCells)
			return
		}
		var err error
		cells, err = experiments.RandomCells(cfg)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		kind = "random"
		reduce = func(results []engine.CellResult) (any, error) {
			return experiments.ReduceRandom(cfg, results)
		}
	default:
		writeError(w, http.StatusBadRequest, "bad request: campaign names neither streamit nor random")
		return
	}
	if len(cells) > s.maxCells {
		writeError(w, http.StatusBadRequest, "bad request: campaign has %d cells, limit %d", len(cells), s.maxCells)
		return
	}

	s.mu.Lock()
	if s.running >= s.maxActive {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "%d campaigns already running, limit %d; retry later", s.maxActive, s.maxActive)
		return
	}
	s.running++
	s.nextID++
	j := &job{id: fmt.Sprintf("c%d", s.nextID), kind: kind, total: len(cells), status: "running"}
	s.jobs[j.id] = j
	s.mu.Unlock()

	go s.runCampaign(j, cells, reduce)

	writeJSON(w, http.StatusAccepted, campaignSubmitResponse{
		ID:        j.id,
		StatusURL: "/v1/campaign/" + j.id,
		Total:     j.total,
	})
}

func (s *Server) runCampaign(j *job, cells []engine.Cell, reduce func([]engine.CellResult) (any, error)) {
	results, err := engine.Run(context.Background(), s.exec, engine.Campaign{
		Cells:  cells,
		Cache:  s.cache,
		OnCell: func(engine.CellResult) { j.done.Add(1) },
	})
	var result any
	if err == nil {
		result, err = reduce(results)
	}
	// Release the active-campaign slot before the job turns visible as
	// finished, so a poller that observes "done" can immediately submit the
	// next campaign without racing a 429.
	s.mu.Lock()
	s.running--
	s.mu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.status = "failed"
		j.errMsg = err.Error()
		return
	}
	j.status = "done"
	j.result = result
}

func (s *Server) handleCampaignStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	j.mu.Lock()
	resp := campaignStatusResponse{
		ID:     j.id,
		Kind:   j.kind,
		Status: j.status,
		Done:   j.done.Load(),
		Total:  j.total,
		Result: j.result,
		Error:  j.errMsg,
	}
	j.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}
