package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spgcmp/internal/engine"
	"spgcmp/internal/experiments"
	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/streamit"
)

func newTestServer(t *testing.T) (*httptest.Server, *engine.AnalysisCache) {
	t.Helper()
	cache := engine.NewAnalysisCache(32)
	srv := New(Config{Cache: cache, MaxCampaignCells: 64})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, cache
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var resp healthzResponse
	if code := getJSON(t, ts.URL+"/v1/healthz", &resp); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if resp.Status != "ok" {
		t.Errorf("status %q", resp.Status)
	}
	if resp.Cache.Capacity != 32 {
		t.Errorf("cache capacity %d, want 32", resp.Cache.Capacity)
	}
}

func TestMapStreamIt(t *testing.T) {
	ts, cache := newTestServer(t)
	body := `{"workload":{"streamit":"DCT","ccr":1},"p":2,"q":2,"seed":42}`
	resp, data := postJSON(t, ts.URL+"/v1/map", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status %d: %s", resp.StatusCode, data)
	}
	var mr mapResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Feasible || mr.Best == "" {
		t.Fatalf("map response %+v", mr)
	}
	if len(mr.Result.Outcomes) != len(experiments.HeuristicNames) {
		t.Fatalf("%d outcomes", len(mr.Result.Outcomes))
	}

	// The service answer must be bit-identical to the in-process protocol.
	a, err := streamit.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	want := engine.Solve(experiments.NewStreamItCell(a, 1, 2, 2, 42), nil)
	if math.Float64bits(mr.Result.Period) != math.Float64bits(want.Result.Period) {
		t.Errorf("period %g != %g", mr.Result.Period, want.Result.Period)
	}
	for i, o := range mr.Result.Outcomes {
		w := want.Result.Outcomes[i]
		if o.Heuristic != w.Heuristic || o.OK != w.OK ||
			(o.OK && math.Float64bits(o.Energy) != math.Float64bits(w.Energy)) {
			t.Errorf("outcome %s: %+v != %+v", o.Heuristic, o, w)
		}
	}

	// A second identical request hits the warm cache and still matches.
	before := cache.Stats().Hits
	resp2, data2 := postJSON(t, ts.URL+"/v1/map", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat map status %d", resp2.StatusCode)
	}
	var mr2 mapResponse
	if err := json.Unmarshal(data2, &mr2); err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(mr2.Result.Period) != math.Float64bits(mr.Result.Period) {
		t.Error("warm-cache answer drifted")
	}
	if cache.Stats().Hits <= before {
		t.Error("repeat request did not hit the cache")
	}
}

func TestMapRandomWorkload(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/map",
		`{"workload":{"random":{"n":20,"elevation":3,"seed":5,"ccr":10}},"p":4,"q":4,"seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status %d: %s", resp.StatusCode, data)
	}
	var mr mapResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if !mr.Feasible {
		t.Fatalf("random workload infeasible: %+v", mr)
	}
}

func TestMapErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, body string
		code       int
	}{
		{"malformed", `{"workload":`, http.StatusBadRequest},
		{"unknown field", `{"workload":{"streamit":"DCT"},"p":2,"q":2,"bogus":1}`, http.StatusBadRequest},
		{"unknown app", `{"workload":{"streamit":"NoSuchApp"},"p":2,"q":2}`, http.StatusBadRequest},
		{"no workload", `{"p":2,"q":2}`, http.StatusBadRequest},
		{"both workloads", `{"workload":{"streamit":"DCT","random":{"n":10,"elevation":1}},"p":2,"q":2}`, http.StatusBadRequest},
		{"bad grid", `{"workload":{"streamit":"DCT"},"p":0,"q":2}`, http.StatusBadRequest},
		{"huge grid", `{"workload":{"streamit":"DCT"},"p":64,"q":64}`, http.StatusBadRequest},
		{"bad random n", `{"workload":{"random":{"n":1,"elevation":1}},"p":2,"q":2}`, http.StatusBadRequest},
		// 50 stages of >= 0.01 Gcycles on a single 1 GHz core cannot meet
		// the 1 s starting period: infeasible, not a request error.
		{"infeasible", `{"workload":{"random":{"n":50,"elevation":1,"seed":3,"ccr":1}},"p":1,"q":1,"seed":1}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/map", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, data)
		}
		if tc.name == "infeasible" {
			var mr mapResponse
			if err := json.Unmarshal(data, &mr); err != nil {
				t.Fatal(err)
			}
			if mr.Feasible {
				t.Error("infeasible answer claims feasibility")
			}
			if len(mr.Result.Outcomes) == 0 {
				t.Error("infeasible answer carries no outcomes")
			}
		}
	}
}

// waitForCampaign polls the status endpoint until the job leaves "running".
func waitForCampaign(t *testing.T, url string) campaignStatusResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st campaignStatusResponse
		if code := getJSON(t, url, &st); code != http.StatusOK {
			t.Fatalf("status poll returned %d", code)
		}
		if st.Status != "running" {
			return st
		}
		if st.Done < 0 || st.Done > int64(st.Total) {
			t.Fatalf("progress %d/%d out of range", st.Done, st.Total)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still running after deadline: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCampaignStreamItRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/campaign",
		`{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":9}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	var sub campaignSubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Total != 4 {
		t.Fatalf("total %d, want 4 CCR cells", sub.Total)
	}
	st := waitForCampaign(t, ts.URL+sub.StatusURL)
	if st.Status != "done" {
		t.Fatalf("campaign ended %q: %s", st.Status, st.Error)
	}
	if st.Done != int64(st.Total) {
		t.Errorf("done %d != total %d", st.Done, st.Total)
	}

	// The embedded result must be the bit-identical campaign table.
	var apps []streamit.App
	a, err := streamit.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	apps = append(apps, a)
	want, err := experiments.RunStreamItWith(2, 2, apps, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var got experiments.StreamItResult
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("%d cells, want %d", len(got.Cells), len(want.Cells))
	}
	for i := range got.Cells {
		g, w := got.Cells[i], want.Cells[i]
		if g.CCRLabel != w.CCRLabel || math.Float64bits(g.Result.Period) != math.Float64bits(w.Result.Period) {
			t.Errorf("cell %d: (%s, %g) vs (%s, %g)", i, g.CCRLabel, g.Result.Period, w.CCRLabel, w.Result.Period)
		}
		for j, o := range g.Result.Outcomes {
			wo := w.Result.Outcomes[j]
			if o.OK != wo.OK || (o.OK && math.Float64bits(o.Energy) != math.Float64bits(wo.Energy)) {
				t.Errorf("cell %d %s: %+v != %+v", i, o.Heuristic, o, wo)
			}
		}
	}
}

func TestCampaignRandomRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/campaign",
		`{"random":{"n":20,"p":2,"q":2,"ccr":1,"max_elevation":2,"graphs_per_elev":2,"seed":11}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, data)
	}
	var sub campaignSubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Total != 4 {
		t.Fatalf("total %d, want 2 elevations x 2 graphs", sub.Total)
	}
	st := waitForCampaign(t, ts.URL+sub.StatusURL)
	if st.Status != "done" {
		t.Fatalf("campaign ended %q: %s", st.Status, st.Error)
	}
	raw, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	var got experiments.RandomResult
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 2 {
		t.Fatalf("%d points, want 2", len(got.Points))
	}
	for _, pt := range got.Points {
		if len(pt.MeanInvNorm) != len(experiments.HeuristicNames) {
			t.Errorf("elevation %d: %d heuristics", pt.Elevation, len(pt.MeanInvNorm))
		}
	}
}

func TestCampaignErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, body string
	}{
		{"malformed", `{"streamit":`},
		{"neither", `{}`},
		{"both", `{"streamit":{"p":2,"q":2},"random":{"n":10,"p":2,"q":2,"ccr":1,"max_elevation":1}}`},
		{"unknown app", `{"streamit":{"p":2,"q":2,"apps":["Nope"]}}`},
		{"empty apps", `{"streamit":{"p":2,"q":2,"apps":[]}}`},
		{"bad grid", `{"streamit":{"p":0,"q":2}}`},
		{"bad elevation range", `{"random":{"n":10,"p":2,"q":2,"ccr":1,"min_elevation":5,"max_elevation":2}}`},
		{"too many cells", `{"random":{"n":10,"p":2,"q":2,"ccr":1,"max_elevation":10,"graphs_per_elev":100,"seed":1}}`},
		// Rejected arithmetically, before any cell is materialized: a
		// response at all proves the server did not try to allocate 2e11
		// cells.
		{"absurd elevation range", `{"random":{"n":10,"p":2,"q":2,"ccr":1,"max_elevation":2000000000,"seed":1}}`},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/campaign", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, data)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/campaign/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign id: status %d, want 404", code)
	}
}

// gatedExecutor blocks every Execute until released, so a test can hold a
// campaign in the running state deterministically.
type gatedExecutor struct {
	release chan struct{}
	inner   engine.PoolExecutor
}

func (g *gatedExecutor) Execute(ctx context.Context, n int, run func(i int)) error {
	<-g.release
	return g.inner.Execute(ctx, n, run)
}

// TestCampaignActiveLimit: submissions beyond MaxActiveCampaigns answer 429
// until a running campaign finishes.
func TestCampaignActiveLimit(t *testing.T) {
	gate := &gatedExecutor{release: make(chan struct{})}
	srv := New(Config{
		Cache:              engine.NewAnalysisCache(8),
		Executor:           gate,
		MaxActiveCampaigns: 1,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	body := `{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":1}}`
	resp, data := postJSON(t, ts.URL+"/v1/campaign", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d (%s)", resp.StatusCode, data)
	}
	var sub campaignSubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if resp2, _ := postJSON(t, ts.URL+"/v1/campaign", body); resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: %d, want 429", resp2.StatusCode)
	}
	close(gate.release)
	if st := waitForCampaign(t, ts.URL+sub.StatusURL); st.Status != "done" {
		t.Fatalf("gated campaign ended %q: %s", st.Status, st.Error)
	}
	if resp3, _ := postJSON(t, ts.URL+"/v1/campaign", body); resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("post-completion submit: %d, want 202", resp3.StatusCode)
	}
}

// TestMapReturnsMapping: /v1/map answers carry the winning placement, and it
// rebuilds into a mapping whose authoritative evaluation reproduces the
// reported energy exactly.
func TestMapReturnsMapping(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/map",
		`{"workload":{"streamit":"DCT","ccr":1},"p":2,"q":2,"seed":42}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map status %d: %s", resp.StatusCode, data)
	}
	var mr mapResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Mapping == nil {
		t.Fatal("feasible answer without a winning mapping")
	}
	if mr.Mapping.P != 2 || mr.Mapping.Q != 2 {
		t.Fatalf("mapping targets %dx%d", mr.Mapping.P, mr.Mapping.Q)
	}
	var bestEnergy float64
	for _, o := range mr.Result.Outcomes {
		if o.Heuristic == mr.Best {
			bestEnergy = o.Energy
		}
		if o.OK && o.Mapping == nil {
			t.Errorf("%s: OK outcome without mapping", o.Heuristic)
		}
	}
	pl := platform.XScale(2, 2)
	m, err := mr.Mapping.Mapping(pl)
	if err != nil {
		t.Fatal(err)
	}
	a, err := streamit.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	g, err := a.GraphWithCCR(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.Evaluate(g, pl, m, mr.Result.Period)
	if err != nil {
		t.Fatalf("returned mapping does not evaluate: %v", err)
	}
	if math.Float64bits(res.Energy) != math.Float64bits(bestEnergy) {
		t.Errorf("re-evaluated energy %g != reported %g", res.Energy, bestEnergy)
	}
}

// TestCellsExecuteEndpoint: the worker endpoint solves spec ranges on the
// shared engine bit-identically to a local solve, in request order.
func TestCellsExecuteEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	a, err := streamit.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	specs := []engine.CellSpec{
		experiments.NewStreamItCell(a, 1, 2, 2, 7).Spec,
		experiments.NewStreamItCell(a, 10, 2, 2, 8).Spec,
	}
	body, err := json.Marshal(engine.ExecuteCellsRequest{Cells: specs})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/cells/execute", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status %d: %s", resp.StatusCode, data)
	}
	var out engine.ExecuteCellsResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(specs) {
		t.Fatalf("%d results for %d cells", len(out.Results), len(specs))
	}
	for i, w := range out.Results {
		want := engine.Solve(specs[i].Cell(), nil)
		if w.Key != want.Key || w.Feasible != want.Feasible ||
			math.Float64bits(w.Result.Period) != math.Float64bits(want.Result.Period) {
			t.Errorf("result %d: (%s,%v,%g) vs (%s,%v,%g)",
				i, w.Key, w.Feasible, w.Result.Period, want.Key, want.Feasible, want.Result.Period)
		}
		for j, o := range w.Result.Outcomes {
			wo := want.Result.Outcomes[j]
			if o.Heuristic != wo.Heuristic || o.OK != wo.OK ||
				(o.OK && math.Float64bits(o.Energy) != math.Float64bits(wo.Energy)) {
				t.Errorf("result %d %s: %+v != %+v", i, o.Heuristic, o, wo)
			}
		}
	}

	for _, tc := range []struct{ name, body string }{
		{"malformed", `{"cells":`},
		{"empty", `{"cells":[]}`},
		{"no workload", `{"cells":[{"key":"k","p":2,"q":2}]}`},
		{"bad grid", `{"cells":[{"key":"k","workload":{"streamit":"DCT"},"p":0,"q":2}]}`},
		{"huge grid", `{"cells":[{"key":"k","workload":{"streamit":"DCT"},"p":64,"q":64}]}`},
	} {
		resp, data := postJSON(t, ts.URL+"/v1/cells/execute", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, data)
		}
	}
}

// TestCampaignSharded: a campaign submitted with a worker list runs through
// the cluster dispatcher against real worker processes (here: a second
// service instance sharing the cache) and reduces bit-identically to the
// local run. A broken worker raises the redispatch counter — its chunks are
// served by the surviving worker — while local fallbacks stay zero as long
// as one healthy worker remains; only an all-broken worker list falls back
// locally.
func TestCampaignSharded(t *testing.T) {
	ts, cache := newTestServer(t)
	workerSrv := New(Config{Cache: cache, MaxCampaignCells: 64})
	worker := httptest.NewServer(workerSrv.Handler())
	t.Cleanup(worker.Close)
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "injected failure", http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)

	run := func(extra string) campaignStatusResponse {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/campaign",
			`{"streamit":{"p":2,"q":2,"apps":["DCT","FFT"],"seed":3}`+extra+`}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
		}
		var sub campaignSubmitResponse
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatal(err)
		}
		st := waitForCampaign(t, ts.URL+sub.StatusURL)
		if st.Status != "done" {
			t.Fatalf("campaign ended %q: %s", st.Status, st.Error)
		}
		return st
	}

	local := run("")
	sharded := run(`,"workers":["` + worker.URL + `"],"shards":2`)
	degraded := run(`,"workers":["` + worker.URL + `","` + broken.URL + `"],"shards":4`)

	localJSON, err := json.Marshal(local.Result)
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]campaignStatusResponse{"sharded": sharded, "degraded": degraded} {
		raw, err := json.Marshal(st.Result)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(localJSON) {
			t.Errorf("%s result diverged from local run", name)
		}
	}
	if sharded.LocalFallbacks != 0 || sharded.Redispatches != 0 {
		t.Errorf("healthy run reported %d local fallbacks, %d redispatches",
			sharded.LocalFallbacks, sharded.Redispatches)
	}
	if len(sharded.WorkerChunks) == 0 || sharded.WorkerChunks[worker.URL] == 0 {
		t.Errorf("healthy run attributed no chunks to the worker: %v", sharded.WorkerChunks)
	}
	// The broken worker's chunks must be re-dispatched to the healthy one,
	// never to the coordinator's pool: that is the counter distinction.
	if degraded.Redispatches == 0 {
		t.Error("degraded run reported no redispatches")
	}
	if degraded.LocalFallbacks != 0 || degraded.Fallbacks != 0 {
		t.Errorf("degraded run fell back locally (%d) despite a healthy worker", degraded.LocalFallbacks)
	}
	if st := run(`,"workers":["` + broken.URL + `"]`); st.LocalFallbacks == 0 || st.Fallbacks != st.LocalFallbacks {
		t.Errorf("all-broken run reported local_fallbacks=%d fallbacks=%d, want equal and non-zero",
			st.LocalFallbacks, st.Fallbacks)
	} else if st.Redispatches != 0 {
		t.Errorf("all-broken run reported %d redispatches with no worker to re-dispatch to", st.Redispatches)
	}

	resp, data := postJSON(t, ts.URL+"/v1/campaign",
		`{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":3},"shards":2}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("shards without workers: %d, want 400 (%s)", resp.StatusCode, data)
	}
}

// TestWorkerEndpoints: workers self-register over POST /v1/workers
// (idempotently, with URL validation), appear in GET /v1/workers and the
// healthz snapshot, and leave via DELETE /v1/workers.
func TestWorkerEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	workerSrv := New(Config{Cache: engine.NewAnalysisCache(8)})
	worker := httptest.NewServer(workerSrv.Handler())
	t.Cleanup(worker.Close)

	resp, data := postJSON(t, ts.URL+"/v1/workers", `{"url":"`+worker.URL+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d (%s)", resp.StatusCode, data)
	}
	var wl workersResponse
	if err := json.Unmarshal(data, &wl); err != nil {
		t.Fatal(err)
	}
	if len(wl.Workers) != 1 || wl.Workers[0].URL != worker.URL || wl.Workers[0].State != engine.WorkerHealthy {
		t.Fatalf("registered list %+v", wl.Workers)
	}
	// Idempotent re-registration (the keep-alive path).
	if resp, _ := postJSON(t, ts.URL+"/v1/workers", `{"url":"`+worker.URL+`"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register: %d", resp.StatusCode)
	}
	var listed workersResponse
	if code := getJSON(t, ts.URL+"/v1/workers", &listed); code != http.StatusOK || len(listed.Workers) != 1 {
		t.Fatalf("list: %d, %+v", code, listed.Workers)
	}
	var hz healthzResponse
	if code := getJSON(t, ts.URL+"/v1/healthz", &hz); code != http.StatusOK || len(hz.Workers) != 1 {
		t.Fatalf("healthz workers: %d, %+v", code, hz.Workers)
	}
	if hz.Dispatcher == nil {
		t.Error("healthz of a coordinator lacks dispatcher stats")
	}

	for _, bad := range []string{`{"url":`, `{"url":""}`, `{"url":"not-a-url"}`, `{"url":"ftp://x"}`} {
		if resp, _ := postJSON(t, ts.URL+"/v1/workers", bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("register %q: %d, want 400", bad, resp.StatusCode)
		}
	}

	del := func(body string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(`{"url":"` + worker.URL + `"}`); code != http.StatusOK {
		t.Fatalf("deregister: %d", code)
	}
	if code := del(`{"url":"` + worker.URL + `"}`); code != http.StatusNotFound {
		t.Errorf("double deregister: %d, want 404", code)
	}
}

// TestCampaignViaRegistry: registering a worker promotes the instance to
// coordinator — campaigns submitted without any worker list are scheduled
// through the cluster dispatcher, reduce bit-identically to a local run,
// attribute their chunks to the worker, and feed the process-lifetime
// dispatcher counters in /v1/healthz.
func TestCampaignViaRegistry(t *testing.T) {
	ts, _ := newTestServer(t)
	workerSrv := New(Config{Cache: engine.NewAnalysisCache(8)})
	worker := httptest.NewServer(workerSrv.Handler())
	t.Cleanup(worker.Close)

	body := `{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":5}}`
	submit := func() campaignStatusResponse {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/campaign", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
		}
		var sub campaignSubmitResponse
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatal(err)
		}
		st := waitForCampaign(t, ts.URL+sub.StatusURL)
		if st.Status != "done" {
			t.Fatalf("campaign ended %q: %s", st.Status, st.Error)
		}
		return st
	}
	local := submit() // registry still empty: runs on the local executor
	if len(local.WorkerChunks) != 0 {
		t.Fatalf("local run attributed chunks to workers: %v", local.WorkerChunks)
	}

	if resp, data := postJSON(t, ts.URL+"/v1/workers", `{"url":"`+worker.URL+`"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d (%s)", resp.StatusCode, data)
	}
	scheduled := submit()
	if scheduled.WorkerChunks[worker.URL] == 0 {
		t.Errorf("registry-scheduled run attributed no chunks to the worker: %+v", scheduled.WorkerChunks)
	}
	if scheduled.LocalFallbacks != 0 {
		t.Errorf("registry-scheduled run fell back locally %d times", scheduled.LocalFallbacks)
	}
	lj, _ := json.Marshal(local.Result)
	sj, _ := json.Marshal(scheduled.Result)
	if string(lj) != string(sj) {
		t.Error("registry-scheduled result diverged from local run")
	}
	var hz healthzResponse
	if code := getJSON(t, ts.URL+"/v1/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if hz.Dispatcher == nil || hz.Dispatcher.Chunks == 0 || hz.Dispatcher.WorkerChunks[worker.URL] == 0 {
		t.Errorf("healthz dispatcher totals %+v missed the scheduled campaign", hz.Dispatcher)
	}
}

// parkedExecutor announces each run and then parks until its context dies,
// reporting the error it unblocked with — a worker-side probe that a
// coordinator's DELETE really cancels in-flight /v1/cells/execute work.
type parkedExecutor struct {
	started   chan struct{}
	unblocked chan error
}

func (p *parkedExecutor) Execute(ctx context.Context, n int, run func(i int)) error {
	p.started <- struct{}{}
	<-ctx.Done()
	p.unblocked <- ctx.Err()
	return ctx.Err()
}

// TestCampaignCancelMidDispatch: DELETE on a dispatched campaign propagates
// through the coordinator's context into the in-flight /v1/cells/execute
// request, so the worker's solver stops promptly; the job settles at
// "cancelled" with no local fallbacks and no leaked scheduling goroutines.
func TestCampaignCancelMidDispatch(t *testing.T) {
	ts, _ := newTestServer(t)
	parked := &parkedExecutor{started: make(chan struct{}, 4), unblocked: make(chan error, 4)}
	workerSrv := New(Config{Cache: engine.NewAnalysisCache(8), Executor: parked})
	worker := httptest.NewServer(workerSrv.Handler())
	t.Cleanup(worker.Close)

	baseline := runtime.NumGoroutine()
	resp, data := postJSON(t, ts.URL+"/v1/campaign",
		`{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":2},"workers":["`+worker.URL+`"],"chunk_cells":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var sub campaignSubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	select {
	case <-parked.started: // the chunk is now in flight on the worker
	case <-time.After(10 * time.Second):
		t.Fatal("chunk never reached the worker")
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+sub.StatusURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel answered %d", dresp.StatusCode)
	}

	// Context propagation: the worker's in-flight solve must unblock with a
	// cancellation, promptly, without waiting out any request timeout.
	select {
	case err := <-parked.unblocked:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("worker solve unblocked with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker solve kept running after DELETE")
	}
	st := waitForCampaign(t, ts.URL+sub.StatusURL)
	if st.Status != "cancelled" {
		t.Fatalf("campaign ended %q", st.Status)
	}
	if st.LocalFallbacks != 0 {
		t.Errorf("cancellation triggered %d local fallbacks", st.LocalFallbacks)
	}

	// No leaked scheduling goroutines: worker pull loops, the supervisor and
	// the campaign runner must all have exited.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// blockingExecutor parks until its context is cancelled — a campaign that
// never finishes on its own, for exercising DELETE.
type blockingExecutor struct{}

func (blockingExecutor) Execute(ctx context.Context, n int, run func(i int)) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestCampaignCancel: DELETE on a running campaign cancels it through the
// engine's context (status turns "cancelled"); DELETE on a finished job
// drops it from the table.
func TestCampaignCancel(t *testing.T) {
	srv := New(Config{Cache: engine.NewAnalysisCache(8), Executor: blockingExecutor{}})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, data := postJSON(t, ts.URL+"/v1/campaign", `{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":1}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var sub campaignSubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+sub.StatusURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled campaignStatusResponse
	if err := json.NewDecoder(dresp.Body).Decode(&cancelled); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted || cancelled.Status != "cancelling" {
		t.Fatalf("cancel answered %d %q", dresp.StatusCode, cancelled.Status)
	}
	st := waitForCampaign(t, ts.URL+sub.StatusURL)
	if st.Status != "cancelled" {
		t.Fatalf("cancelled campaign ended %q", st.Status)
	}

	// Deleting the now-finished job drops it.
	dresp2, err := http.DefaultClient.Do(del.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp2.Body)
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusOK {
		t.Fatalf("delete finished job: %d", dresp2.StatusCode)
	}
	if code := getJSON(t, ts.URL+sub.StatusURL, nil); code != http.StatusNotFound {
		t.Errorf("deleted job still pollable: %d", code)
	}
	dresp3, err := http.DefaultClient.Do(del.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp3.Body)
	dresp3.Body.Close()
	if dresp3.StatusCode != http.StatusNotFound {
		t.Errorf("double delete: %d, want 404", dresp3.StatusCode)
	}
}

// TestJobRetention: finished jobs expire by TTL and by the finished-job
// count bound, oldest first; running jobs are never pruned.
func TestJobRetention(t *testing.T) {
	var clock atomic.Value
	clock.Store(time.Unix(1_000_000, 0))
	srv := New(Config{
		Cache:           engine.NewAnalysisCache(8),
		JobTTL:          time.Hour,
		MaxFinishedJobs: 1,
		Now:             func() time.Time { return clock.Load().(time.Time) },
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	submit := func() string {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/campaign", `{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":1}}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
		}
		var sub campaignSubmitResponse
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatal(err)
		}
		if st := waitForCampaign(t, ts.URL+sub.StatusURL); st.Status != "done" {
			t.Fatalf("campaign ended %q: %s", st.Status, st.Error)
		}
		return sub.StatusURL
	}

	first := submit()
	second := submit()
	// MaxFinishedJobs=1: polling (which prunes) must have evicted the first.
	if code := getJSON(t, ts.URL+second, nil); code != http.StatusOK {
		t.Fatalf("second job pollable: %d", code)
	}
	if code := getJSON(t, ts.URL+first, nil); code != http.StatusNotFound {
		t.Errorf("oldest finished job survived the count bound: %d", code)
	}
	// Advance past the TTL: the second job expires too.
	clock.Store(clock.Load().(time.Time).Add(2 * time.Hour))
	if code := getJSON(t, ts.URL+second, nil); code != http.StatusNotFound {
		t.Errorf("finished job survived the TTL: %d", code)
	}
}

// signalingExecutor announces when a run starts and parks until released —
// for holding a /v1/cells/execute range in flight deterministically.
type signalingExecutor struct {
	started chan struct{}
	release chan struct{}
}

func (g *signalingExecutor) Execute(ctx context.Context, n int, run func(i int)) error {
	g.started <- struct{}{}
	<-g.release
	return (&engine.PoolExecutor{}).Execute(ctx, n, run)
}

// TestCellsExecuteRangeLimit: concurrent ranges beyond MaxActiveRanges
// answer 429 (the sender's fallback absorbs them); capacity frees when a
// range finishes.
func TestCellsExecuteRangeLimit(t *testing.T) {
	gate := &signalingExecutor{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := New(Config{Cache: engine.NewAnalysisCache(8), Executor: gate, MaxActiveRanges: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	a, err := streamit.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(engine.ExecuteCellsRequest{Cells: []engine.CellSpec{
		experiments.NewStreamItCell(a, 1, 2, 2, 7).Spec,
	}})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		data []byte
	}
	first := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/cells/execute", "application/json", strings.NewReader(string(body)))
		if err != nil {
			first <- result{0, []byte(err.Error())}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		first <- result{resp.StatusCode, data}
	}()
	<-gate.started // the first range now holds the only slot

	resp2, data2 := postJSON(t, ts.URL+"/v1/cells/execute", string(body))
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit range: %d, want 429 (%s)", resp2.StatusCode, data2)
	}

	close(gate.release)
	r1 := <-first
	if r1.code != http.StatusOK {
		t.Fatalf("gated range: %d (%s)", r1.code, r1.data)
	}
	// Capacity freed: the next range executes.
	resp3, data3 := postJSON(t, ts.URL+"/v1/cells/execute", string(body))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-release range: %d (%s)", resp3.StatusCode, data3)
	}
}
