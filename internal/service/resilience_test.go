package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spgcmp/internal/engine"
	"spgcmp/internal/experiments"
	"spgcmp/internal/streamit"
)

// deadlineGatedExecutor parks every run until released but honors context
// cancellation, so a test can hold a campaign past its deadline.
type deadlineGatedExecutor struct {
	release chan struct{}
}

func (g *deadlineGatedExecutor) Execute(ctx context.Context, n int, run func(i int)) error {
	select {
	case <-g.release:
	case <-ctx.Done():
		return ctx.Err()
	}
	return (&engine.PoolExecutor{}).Execute(ctx, n, run)
}

// TestRetryAfterOnShedding: every load-shedding rejection — map concurrency,
// campaign cap, range concurrency — carries a Retry-After hint.
func TestRetryAfterOnShedding(t *testing.T) {
	a, err := streamit.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	rangeBody, err := json.Marshal(engine.ExecuteCellsRequest{Cells: []engine.CellSpec{
		experiments.NewStreamItCell(a, 1, 2, 2, 7).Spec,
	}})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("map", func(t *testing.T) {
		srv := New(Config{Cache: engine.NewAnalysisCache(8), MaxActiveMaps: 1})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		// Occupy the only map slot directly; the handler sheds the request
		// before any solve starts.
		srv.maps.active <- struct{}{}
		resp, data := postJSON(t, ts.URL+"/v1/map",
			`{"workload":{"streamit":"DCT","ccr":1},"p":2,"q":2,"seed":1}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-limit map: %d, want 429 (%s)", resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		<-srv.maps.active
		// Slot freed: the same request now solves.
		if resp2, data2 := postJSON(t, ts.URL+"/v1/map",
			`{"workload":{"streamit":"DCT","ccr":1},"p":2,"q":2,"seed":1}`); resp2.StatusCode != http.StatusOK {
			t.Fatalf("post-release map: %d (%s)", resp2.StatusCode, data2)
		}
	})

	t.Run("campaign", func(t *testing.T) {
		gate := &gatedExecutor{release: make(chan struct{})}
		srv := New(Config{Cache: engine.NewAnalysisCache(8), Executor: gate, MaxActiveCampaigns: 1})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		body := `{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":1}}`
		if resp, data := postJSON(t, ts.URL+"/v1/campaign", body); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("first submit: %d (%s)", resp.StatusCode, data)
		}
		resp, _ := postJSON(t, ts.URL+"/v1/campaign", body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-limit submit: %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		close(gate.release)
	})

	t.Run("range", func(t *testing.T) {
		gate := &signalingExecutor{started: make(chan struct{}, 1), release: make(chan struct{})}
		srv := New(Config{Cache: engine.NewAnalysisCache(8), Executor: gate, MaxActiveRanges: 1})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := http.Post(ts.URL+"/v1/cells/execute", "application/json", strings.NewReader(string(rangeBody)))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		<-gate.started
		resp, data := postJSON(t, ts.URL+"/v1/cells/execute", string(rangeBody))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-limit range: %d, want 429 (%s)", resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		close(gate.release)
		<-done
	})
}

// TestMapDeadline: a /v1/map whose budget expires mid-solve answers 504; the
// two deadline spellings agree; a malformed header is a request error.
func TestMapDeadline(t *testing.T) {
	ts, _ := newTestServer(t)
	// A 16x16 grid with a large random SPG takes far longer than 1 ms, so the
	// deadline always fires first.
	slow := `{"workload":{"random":{"n":40,"elevation":6,"seed":9,"ccr":1}},"p":16,"q":16,"deadline_ms":1}`
	resp, data := postJSON(t, ts.URL+"/v1/map", slow)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired map: %d, want 504 (%s)", resp.StatusCode, data)
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/map",
		strings.NewReader(`{"workload":{"random":{"n":40,"elevation":6,"seed":9,"ccr":1}},"p":16,"q":16}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(engine.DeadlineHeader, "1")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("header-expired map: %d, want 504", hresp.StatusCode)
	}

	bad, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/map",
		strings.NewReader(`{"workload":{"streamit":"DCT","ccr":1},"p":2,"q":2}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Header.Set("Content-Type", "application/json")
	bad.Header.Set(engine.DeadlineHeader, "soon")
	bresp, err := http.DefaultClient.Do(bad)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline header: %d, want 400", bresp.StatusCode)
	}

	if resp2, data2 := postJSON(t, ts.URL+"/v1/map",
		`{"workload":{"streamit":"DCT","ccr":1},"p":2,"q":2,"deadline_ms":-5}`); resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline_ms: %d, want 400 (%s)", resp2.StatusCode, data2)
	}
}

// TestCampaignDeadline: a campaign that outlives its deadline_ms fails with
// "deadline exceeded", and its cancellation context stops the executor.
func TestCampaignDeadline(t *testing.T) {
	gate := &deadlineGatedExecutor{release: make(chan struct{})}
	srv := New(Config{Cache: engine.NewAnalysisCache(8), Executor: gate})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, data := postJSON(t, ts.URL+"/v1/campaign",
		`{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":1},"deadline_ms":30}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var sub campaignSubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	st := waitForCampaign(t, ts.URL+sub.StatusURL)
	if st.Status != "failed" || st.Error != "deadline exceeded" {
		t.Fatalf("expired campaign: status %q error %q, want failed / deadline exceeded", st.Status, st.Error)
	}
	// Without a deadline the same gated campaign still runs to completion.
	close(gate.release)
	resp2, data2 := postJSON(t, ts.URL+"/v1/campaign", `{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":1}}`)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d (%s)", resp2.StatusCode, data2)
	}
	if err := json.Unmarshal(data2, &sub); err != nil {
		t.Fatal(err)
	}
	if st := waitForCampaign(t, ts.URL+sub.StatusURL); st.Status != "done" {
		t.Fatalf("undeadlined campaign ended %q: %s", st.Status, st.Error)
	}
}

// TestCellsExecuteBudgetFloor: a range advertising less remaining budget than
// MinRangeBudget is refused with 503 before any work starts — the worker half
// of deadline propagation.
func TestCellsExecuteBudgetFloor(t *testing.T) {
	srv := New(Config{Cache: engine.NewAnalysisCache(8), MinRangeBudget: 20 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	a, err := streamit.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(engine.ExecuteCellsRequest{Cells: []engine.CellSpec{
		experiments.NewStreamItCell(a, 1, 2, 2, 7).Spec,
	}})
	if err != nil {
		t.Fatal(err)
	}
	post := func(deadline string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/cells/execute", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if deadline != "" {
			req.Header.Set(engine.DeadlineHeader, deadline)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := post("5"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("5ms budget under 20ms floor: %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Error("budget rejection without Retry-After")
	}
	if resp := post("0"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero budget: %d, want 400", resp.StatusCode)
	}
	if resp := post("later"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed budget: %d, want 400", resp.StatusCode)
	}
	if resp := post("60000"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ample budget: %d, want 200", resp.StatusCode)
	}
	if resp := post(""); resp.StatusCode != http.StatusOK {
		t.Fatalf("no budget header: %d, want 200", resp.StatusCode)
	}
}

// TestDrain: StartDrain sheds all new work with 503 while /v1/healthz keeps
// answering 200 with status "draining" — alive for probes, ineligible for
// placement.
func TestDrain(t *testing.T) {
	cache := engine.NewAnalysisCache(8)
	srv := New(Config{Cache: cache})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	a, err := streamit.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	rangeBody, err := json.Marshal(engine.ExecuteCellsRequest{Cells: []engine.CellSpec{
		experiments.NewStreamItCell(a, 1, 2, 2, 7).Spec,
	}})
	if err != nil {
		t.Fatal(err)
	}

	srv.StartDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	for _, c := range []struct{ name, url, body string }{
		{"map", "/v1/map", `{"workload":{"streamit":"DCT","ccr":1},"p":2,"q":2}`},
		{"campaign", "/v1/campaign", `{"streamit":{"p":2,"q":2,"apps":["DCT"],"seed":1}}`},
		{"range", "/v1/cells/execute", string(rangeBody)},
	} {
		resp, data := postJSON(t, ts.URL+c.url, c.body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s while draining: %d, want 503 (%s)", c.name, resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s drain rejection without Retry-After", c.name)
		}
	}
	var hz healthzResponse
	if code := getJSON(t, ts.URL+"/v1/healthz", &hz); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", code)
	}
	if hz.Status != "draining" {
		t.Errorf("healthz status %q, want draining", hz.Status)
	}
}

// TestWorkerDrainingAnnouncement: POST /v1/workers with draining:true keeps
// the worker registered and probe-alive but marks it draining (visible in the
// worker list, breaker closed); a plain re-registration clears the mark.
func TestWorkerDrainingAnnouncement(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp, data := postJSON(t, ts.URL+"/v1/workers", `{"url":"http://w1:8080"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d (%s)", resp.StatusCode, data)
	}
	resp, data := postJSON(t, ts.URL+"/v1/workers", `{"url":"http://w1:8080","draining":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining announce: %d (%s)", resp.StatusCode, data)
	}
	var list workersResponse
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 1 || !list.Workers[0].Draining {
		t.Fatalf("after announce: %+v, want one draining worker", list.Workers)
	}
	if list.Workers[0].Breaker != engine.BreakerClosed {
		t.Errorf("draining worker breaker %v, want closed (drain is not death)", list.Workers[0].Breaker)
	}
	// A plain keep-alive re-registration clears the drain mark. (Decode into
	// a fresh struct: Unmarshal merges into reused slice elements, which
	// would mask the omitted draining field.)
	if resp, data = postJSON(t, ts.URL+"/v1/workers", `{"url":"http://w1:8080"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register: %d (%s)", resp.StatusCode, data)
	}
	var after workersResponse
	if err := json.Unmarshal(data, &after); err != nil {
		t.Fatal(err)
	}
	if len(after.Workers) != 1 || after.Workers[0].Draining {
		t.Fatalf("after re-register: %+v, want drain cleared", after.Workers)
	}
}

// TestCampaignStatusRetries: a campaign dispatched at a faulty worker surfaces
// its retry spend and budget in the status answer, stays within budget, and
// still finishes with a result.
func TestCampaignStatusRetries(t *testing.T) {
	// The worker answers every execute with 500, so each dispatch failure
	// spends a retry until the registry declares it dead and the chunks
	// degrade to the local pool.
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "injected", http.StatusInternalServerError)
	}))
	t.Cleanup(worker.Close)

	srv := New(Config{Cache: engine.NewAnalysisCache(16)})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, data := postJSON(t, ts.URL+"/v1/campaign",
		`{"streamit":{"p":2,"q":2,"apps":["DCT","FFT"],"seed":1},"workers":["`+worker.URL+`"],"chunk_cells":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, data)
	}
	var sub campaignSubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	st := waitForCampaign(t, ts.URL+sub.StatusURL)
	if st.Status != "done" {
		t.Fatalf("campaign ended %q: %s", st.Status, st.Error)
	}
	if st.RetryBudget == 0 {
		t.Fatalf("status carries no retry budget: %+v", st)
	}
	if st.Retries == 0 {
		t.Errorf("no retries recorded against an always-failing worker: %+v", st)
	}
	if st.Retries > st.RetryBudget {
		t.Errorf("retries %d exceed budget %d", st.Retries, st.RetryBudget)
	}
	if st.LocalFallbacks == 0 {
		t.Error("no local fallbacks despite a dead-on-arrival worker")
	}
}
