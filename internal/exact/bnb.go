package exact

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"spgcmp/internal/core"
	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// Branch-and-bound engine. The search space and evaluation are identical to
// the exhaustive enumeration (same restricted-growth-string partition order,
// same symmetry-reduced placement recursion, same evaluator); the engine
// only ever removes subtrees whose admissible lower bound strictly exceeds
// the incumbent energy, so the optimum — and, with the tie rules below, the
// exact mapping bytes — are preserved.
//
// Determinism rules. The exhaustive baseline returns the FIRST minimum-
// energy mapping in enumeration order (its incumbent is replaced on strict
// improvement only). To reproduce that under parallelism:
//
//   - The search is split into units: the lexicographic prefixes of the
//     partition tree at a fixed depth, in enumeration order. Each unit is
//     explored by exactly one worker with first-found-wins local tie rules,
//     and unit results are reduced in ascending unit order with strict
//     improvement — the exhaustive engine's global order, reconstructed.
//   - The shared incumbent is (energy, unit) ordered lexicographically; it
//     gates pruning only, never selection. Pruning is strict with slack —
//     a subtree dies only when bound > incumbent*(1+pruneSlack) — so a
//     subtree that could still contain an equal-energy, earlier-unit mapping
//     is never discarded, and last-ulp float divergence between a bound and
//     the evaluator's summation order can never prune the true winner.
//   - The heuristic seed enters the incumbent with unit +inf: it prunes but
//     can never be selected, and since its (path-stripped) mapping lies in
//     the search space, its energy is >= the in-space optimum — pruning
//     against it is sound.
//
// Sound pruning plus total-order selection make the result independent of
// worker count and goroutine schedule. The one schedule-dependent quantity
// is the per-unit node count (a better shared incumbent prunes more), which
// the budget meters; sharing only ever shrinks explored counts, so any
// instance whose units fit the budget under seed-only pruning completes
// under every schedule. On truncation the engine returns ErrTooLarge rather
// than an unproven best-so-far.

// pruneSlack is the relative slack of the prune test. Bounds and the
// evaluator accumulate the same terms in different orders, so they can
// disagree by a few ulp (~1e-16 relative per term); 1e-12 dominates that by
// orders of magnitude while remaining far below any real energy gap.
const pruneSlack = 1e-12

// seedUnit is the unit rank of the heuristic seed: it loses every tie, so
// the seed is never selected, only pruned against.
const seedUnit = int64(math.MaxInt64)

type stageVol struct {
	j   int32
	vol float64
}

type bnbIncumbent struct {
	energy float64
	unit   int64
}

type bnbShared struct {
	s     *Solver
	ctx   context.Context
	g     *spg.Graph
	pl    *platform.Platform
	T     float64
	n     int
	cores int
	eval  func(*spg.Graph, *platform.Platform, *mapping.Mapping, float64) (*mapping.Result, error)

	weights     []float64
	maxCoreWork float64
	syms        [][]int
	allSyms     []int

	// Partition-side bound data: per-stage solo-cluster dynamic floors, the
	// aggregated lower adjacency (earlier-stage neighbours with volumes),
	// and the constant base (comm leakage + all solo floors).
	floors    *core.EnergyFloors
	soloFloor []float64
	lowerAdj  [][]stageVol
	egb       float64
	leakT     float64
	baseBound float64

	units   [][]int
	results []*core.Solution
	budget  int // per-unit placement budget

	nextUnit atomic.Int64
	inc      atomic.Pointer[bnbIncumbent]
	stop     atomic.Bool
	ctxHit   atomic.Bool

	placements  atomic.Int64
	prunedParts atomic.Int64
	prunedPlace atomic.Int64
	truncated   atomic.Bool
}

// offer installs (energy, unit) as the incumbent when it is lexicographically
// smaller than the current one.
func (sh *bnbShared) offer(energy float64, unit int64) {
	for {
		cur := sh.inc.Load()
		if cur != nil && (cur.energy < energy || (cur.energy == energy && cur.unit <= unit)) {
			return
		}
		if sh.inc.CompareAndSwap(cur, &bnbIncumbent{energy: energy, unit: unit}) {
			return
		}
	}
}

// threshold returns the current prune line: only bounds strictly above it
// are cut.
func (sh *bnbShared) threshold() float64 {
	cur := sh.inc.Load()
	if cur == nil {
		return math.Inf(1)
	}
	return cur.energy * (1 + pruneSlack)
}

func (s *Solver) solveBnB(ctx context.Context, inst core.Instance, st *Stats) (*core.Solution, error) {
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	n := g.N()
	sh := &bnbShared{
		s:           s,
		ctx:         ctx,
		g:           g,
		pl:          pl,
		T:           T,
		n:           n,
		cores:       pl.NumCores(),
		eval:        mapping.Evaluate,
		maxCoreWork: T * pl.MaxSpeed(),
		egb:         pl.EnergyPerGB,
		leakT:       pl.LeakPower * T,
		budget:      s.MaxPlacements,
	}
	if s.General {
		sh.eval = mapping.EvaluateGeneral
	}
	if !s.NoSymmetry {
		sh.syms = gridSymmetries(pl.P, pl.Q)
	}
	sh.allSyms = make([]int, len(sh.syms))
	for i := range sh.allSyms {
		sh.allSyms[i] = i
	}
	sh.weights = make([]float64, n)
	for i := range sh.weights {
		sh.weights[i] = g.Stages[i].Weight
	}

	// Partition-side bound tables. A stage that cannot meet the period alone
	// at the fastest speed dooms every partition: report infeasibility
	// exactly as the exhaustive engine does (its generator can never place
	// the stage).
	sh.floors = core.FloorsFor(inst.Analysis, pl)
	sh.soloFloor = make([]float64, n)
	base := pl.CommLeakPower * T
	for i := 0; i < n; i++ {
		fl, ok := sh.floors.StageDynFloor(i, T)
		if !ok {
			return nil, core.ErrNoSolution
		}
		sh.soloFloor[i] = fl
		base += fl
	}
	sh.baseBound = base
	sh.lowerAdj = make([][]stageVol, n)
	for _, e := range g.Edges {
		i, j := e.Src, e.Dst
		if j > i {
			i, j = j, i
		}
		sh.lowerAdj[i] = append(sh.lowerAdj[i], stageVol{j: int32(j), vol: e.Volume})
	}

	// Incumbent seeding: best heuristic mapping, path-stripped back into the
	// solver's XY-routed search space and re-evaluated, so its energy upper-
	// bounds the in-space optimum.
	if !s.NoSeed {
		if e, ok := s.seedEnergy(inst); ok {
			sh.offer(e, seedUnit)
			st.Seeded, st.SeedEnergy = true, e
		}
	}

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	target := 8 * workers
	if target < 16 {
		target = 16
	}
	sh.units = buildUnits(sh, target)
	if workers > len(sh.units) {
		workers = len(sh.units)
	}
	if workers < 1 {
		workers = 1
	}
	st.Units, st.Workers = len(sh.units), workers
	sh.results = make([]*core.Solution, len(sh.units))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Child arenas are carved here, in the coordinator, because Scratch
		// children may only be created by the arena's owning goroutine; each
		// worker then owns its child for the whole solve.
		var sc *core.Scratch
		if inst.Scratch != nil {
			sc = inst.Scratch.Child(w)
		}
		wk := newBnbWorker(sh, sc)
		wg.Add(1)
		go func() {
			defer wg.Done()
			wk.run()
		}()
	}
	wg.Wait()

	st.Placements = sh.placements.Load()
	st.PrunedPartitions = sh.prunedParts.Load()
	st.PrunedPlacements = sh.prunedPlace.Load()
	st.Truncated = sh.truncated.Load()
	if sh.ctxHit.Load() {
		return nil, ctx.Err()
	}
	if st.Truncated {
		return nil, ErrTooLarge
	}
	// Deterministic reduction: ascending unit order, strict improvement —
	// the exhaustive engine's first-found-wins order, reconstructed.
	var best *core.Solution
	for _, sol := range sh.results {
		if sol == nil {
			continue
		}
		if best == nil || sol.Result.Energy < best.Result.Energy {
			best = sol
		}
	}
	if best == nil {
		return nil, core.ErrNoSolution
	}
	return best, nil
}

// seedEnergy runs the cheap heuristics and returns the best energy whose
// mapping, stripped of pinned paths, is valid under the solver's own
// evaluator. Stripping matters for soundness: DPA1D pins snake paths and
// DPA2D pins YX paths, which lie outside the XY-routed search space; the
// stripped twin is exactly the mapping the search could itself produce, so
// its energy can never undercut the in-space optimum.
func (s *Solver) seedEnergy(inst core.Instance) (float64, bool) {
	eval := mapping.Evaluate
	if s.General {
		eval = mapping.EvaluateGeneral
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	best, found := math.Inf(1), false
	for _, h := range core.AllWith(core.Options{Seed: seed}) {
		sol, err := h.Solve(inst)
		if err != nil || sol == nil || sol.Mapping == nil {
			continue
		}
		m := sol.Mapping
		if len(m.Paths) > 0 {
			m = m.Clone()
			m.Paths = nil
		}
		res, err := eval(inst.Graph, inst.Platform, m, inst.Period)
		if err != nil {
			continue
		}
		if res.Energy < best {
			best, found = res.Energy, true
		}
	}
	return best, found
}

// buildUnits splits the partition tree into lexicographically ordered units:
// the feasible restricted-growth-string prefixes at the shallowest depth
// yielding at least target of them (or the full depth n). Prefix feasibility
// uses exactly the generator's cluster-capacity test, so every unit replays
// to a reachable search state.
func buildUnits(sh *bnbShared, target int) [][]int {
	var units [][]int
	part := make([]int, sh.n)
	work := make([]float64, sh.n)
	for depth := 1; ; depth++ {
		units = units[:0]
		var rec func(i, k int)
		rec = func(i, k int) {
			if i == depth {
				units = append(units, append([]int(nil), part[:depth]...))
				return
			}
			w := sh.weights[i]
			for c := 0; c <= k && c < sh.cores; c++ {
				if work[c]+w > sh.maxCoreWork {
					continue
				}
				part[i] = c
				old := work[c]
				work[c] = old + w
				nk := k
				if c == k {
					nk = k + 1
				}
				rec(i+1, nk)
				work[c] = old
			}
		}
		rec(0, 0)
		if depth == sh.n || len(units) >= target {
			return units
		}
	}
}

type bnbWorker struct {
	sh *bnbShared

	part    []int
	work    []float64
	clFloor []float64 // dynamic floor of each open cluster's current work
	bound   float64

	placeBuf []int
	imgBuf   []int
	used     []int
	// activeBuf rows hold the surviving-symmetry lists per placement depth,
	// same discipline as the exhaustive engine.
	activeBuf [][]int
	account   *mapping.PrefixAccount

	localBest   *core.Solution
	unit        int64
	nodes       int
	tick        int
	unitTrunc   bool
	prunedParts int64
	prunedPlace int64
}

func newBnbWorker(sh *bnbShared, sc *core.Scratch) *bnbWorker {
	n, cores := sh.n, sh.cores
	w := &bnbWorker{sh: sh}
	// Scratch buffers are dirty by contract; everything read before first
	// write is zeroed below. All methods are nil-safe, falling back to the
	// heap when no arena is attached.
	w.part = sc.Ints(n)
	w.work = sc.F64(n)
	w.clFloor = sc.F64(n)
	w.placeBuf = sc.Ints(cores)[:0]
	w.imgBuf = sc.Ints(cores)
	w.used = sc.Ints(cores)
	w.activeBuf = sc.IntRows(cores+1, len(sh.syms))
	maxK := n
	if cores < maxK {
		maxK = cores
	}
	w.account = mapping.NewPrefixAccount(maxK)
	for i := range w.used {
		w.used[i] = 0
	}
	return w
}

func (w *bnbWorker) run() {
	for {
		if w.sh.stop.Load() {
			return
		}
		u := w.sh.nextUnit.Add(1) - 1
		if u >= int64(len(w.sh.units)) {
			return
		}
		w.runUnit(u)
	}
}

func (w *bnbWorker) runUnit(u int64) {
	sh := w.sh
	w.unit = u
	w.nodes = 0
	w.unitTrunc = false
	w.localBest = nil
	w.bound = sh.baseBound
	for c := 0; c < sh.n; c++ {
		w.work[c] = 0
		w.clFloor[c] = 0
	}
	w.placeBuf = w.placeBuf[:0]

	// Replay the unit's prefix. Every assignment repeats the generator's
	// exact float operations, so the state (works, bound) is bit-identical
	// to a direct depth-first descent; the bound check against the current
	// incumbent is the same sound prune the descent would apply.
	prefix := sh.units[u]
	k := 0
	pruned := false
	thr := sh.threshold()
	for i, c := range prefix {
		nb, nw, nf, feasible := w.tryAssign(i, c, k)
		if !feasible {
			pruned = true // unreachable: prefixes are generated feasibly
			break
		}
		if nb > thr {
			w.prunedParts++
			pruned = true
			break
		}
		w.part[i] = c
		w.work[c], w.clFloor[c], w.bound = nw, nf, nb
		if c == k {
			k++
		}
	}
	if !pruned {
		w.gen(len(prefix), k)
	}

	sh.results[u] = w.localBest
	sh.placements.Add(int64(w.nodes))
	sh.prunedParts.Add(w.prunedParts)
	sh.prunedPlace.Add(w.prunedPlace)
	w.prunedParts, w.prunedPlace = 0, 0
	if w.unitTrunc {
		sh.truncated.Store(true)
		sh.stop.Store(true)
	}
}

// tryAssign prices assigning stage i to cluster c (k clusters currently
// open): the cluster's floor moves from its current value to the floor of
// the grown work, stage i stops contributing its solo floor, a new cluster
// pays the period's leakage, and every edge from i to an earlier stage in a
// different cluster starts paying its one-hop link-energy floor.
func (w *bnbWorker) tryAssign(i, c, k int) (newBound, newWork, newFloor float64, feasible bool) {
	sh := w.sh
	newWork = w.work[c] + sh.weights[i]
	if newWork > sh.maxCoreWork {
		return 0, 0, 0, false
	}
	newFloor, _ = sh.floors.DynFloor(newWork, sh.T)
	delta := newFloor - w.clFloor[c] - sh.soloFloor[i]
	if c == k {
		delta += sh.leakT
	}
	for _, sv := range sh.lowerAdj[i] {
		if w.part[sv.j] != c {
			delta += sv.vol * sh.egb
		}
	}
	return w.bound + delta, newWork, newFloor, true
}

func (w *bnbWorker) checkStop() bool {
	sh := w.sh
	w.tick++
	if w.tick&255 == 0 {
		if sh.stop.Load() {
			return true
		}
		if sh.ctx.Err() != nil {
			sh.ctxHit.Store(true)
			sh.stop.Store(true)
			return true
		}
	}
	return false
}

func (w *bnbWorker) gen(i, k int) {
	sh := w.sh
	if w.unitTrunc || w.checkStop() {
		return
	}
	if i == sh.n {
		w.evaluate(k)
		return
	}
	thr := sh.threshold()
	for c := 0; c <= k && c < sh.cores; c++ {
		nb, nw, nf, feasible := w.tryAssign(i, c, k)
		if !feasible {
			continue
		}
		if nb > thr {
			w.prunedParts++
			continue
		}
		w.part[i] = c
		ow, of, ob := w.work[c], w.clFloor[c], w.bound
		w.work[c], w.clFloor[c], w.bound = nw, nf, nb
		nk := k
		if c == k {
			nk = k + 1
		}
		w.gen(i+1, nk)
		w.work[c], w.clFloor[c], w.bound = ow, of, ob
		if w.unitTrunc {
			return
		}
	}
}

func (w *bnbWorker) evaluate(k int) {
	sh := w.sh
	if k > sh.cores {
		return
	}
	if !sh.general() && !quotientAcyclic(sh.g, w.part, k) {
		return
	}
	if !w.account.Reset(sh.g, sh.pl, sh.T, w.part, k) {
		return
	}
	if w.account.Floor > sh.threshold() {
		w.prunedParts++
		return
	}
	w.placeBuf = w.placeBuf[:0]
	w.place(0, k, sh.allSyms, 0)
}

func (sh *bnbShared) general() bool { return sh.s.General }

// consume meters one complete placement against the per-unit budget; it
// reports false when the budget is spent, marking the unit truncated.
func (w *bnbWorker) consume() bool {
	if w.nodes >= w.sh.budget {
		w.unitTrunc = true
		return false
	}
	w.nodes++
	return true
}

func (w *bnbWorker) place(c, k int, active []int, extra float64) {
	sh := w.sh
	if w.unitTrunc || w.checkStop() {
		return
	}
	if c == k {
		if !w.consume() {
			return
		}
		if w.consider(w.placeBuf, k) {
			return
		}
		// Same orbit-recovery path as the exhaustive engine: energy is
		// symmetry-invariant but link-capacity feasibility is not, so when
		// the canonical member is invalid the rest of the orbit is tried.
		for _, perm := range sh.syms {
			if !w.consume() {
				return
			}
			for ci, coreIdx := range w.placeBuf {
				w.imgBuf[ci] = perm[coreIdx]
			}
			w.consider(w.imgBuf[:k], k)
		}
		return
	}
	thr := sh.threshold()
	for coreIdx := 0; coreIdx < sh.cores; coreIdx++ {
		if w.used[coreIdx] != 0 {
			continue
		}
		nonCanonical := false
		child := w.activeBuf[c+1][:0]
		for _, si := range active {
			img := sh.syms[si][coreIdx]
			if img < coreIdx {
				nonCanonical = true
				break
			}
			if img == coreIdx {
				child = append(child, si)
			}
		}
		if nonCanonical {
			continue
		}
		// Prefix energy bound: partition floor + hop excess of the placed
		// pairs. PlaceExtra depends only on pairwise Manhattan distances, so
		// the bound is identical across a prefix's whole symmetry orbit and
		// pruning composes exactly with the canonicity reduction above.
		d := w.account.PlaceExtra(sh.pl, c, coreIdx, w.placeBuf)
		if w.account.Floor+extra+d > thr {
			w.prunedPlace++
			continue
		}
		w.used[coreIdx] = 1
		w.placeBuf = append(w.placeBuf, coreIdx)
		w.place(c+1, k, child, extra+d)
		w.placeBuf = w.placeBuf[:len(w.placeBuf)-1]
		w.used[coreIdx] = 0
		if w.unitTrunc {
			return
		}
	}
}

func (w *bnbWorker) consider(pb []int, k int) bool {
	sh := w.sh
	m := buildMapping(sh.g, sh.pl, sh.T, w.part, pb)
	if m == nil {
		return false
	}
	res, err := sh.eval(sh.g, sh.pl, m, sh.T)
	if err != nil {
		return false
	}
	if w.localBest == nil || res.Energy < w.localBest.Result.Energy {
		w.localBest = &core.Solution{Heuristic: sh.s.Name(), Mapping: m, Result: res}
	}
	sh.offer(res.Energy, w.unit)
	return true
}
