package exact

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"spgcmp/internal/core"
	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/randspg"
	"spgcmp/internal/spg"
	"spgcmp/internal/streamit"
)

// randomSPG builds the seeded random series-parallel graphs the equivalence
// panel runs on, same generator shape as the symmetry-pruning tests.
func randomSPG(seed int64, n int, wLo, wHi, vLo, vHi float64) *spg.Graph {
	rng := rand.New(rand.NewSource(seed))
	var build func(n int) *spg.Graph
	build = func(n int) *spg.Graph {
		if n <= 2 {
			return spg.Primitive(1, 1, 1)
		}
		k := 1 + rng.Intn(n-1)
		if rng.Intn(2) == 0 {
			return spg.Series(build(k), build(n-k))
		}
		return spg.Parallel(build(k), build(n-k))
	}
	g := build(n)
	spg.RandomizeWeights(g, rng, wLo, wHi)
	spg.RandomizeVolumes(g, rng, vLo, vHi)
	return g
}

func dctGraph(t testing.TB) *spg.Graph {
	t.Helper()
	app, err := streamit.ByName("DCT")
	if err != nil {
		t.Fatal(err)
	}
	g, err := app.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// requireIdentical asserts two solve outcomes agree bit for bit: same error
// class, same energy bits, same mapping bytes.
func requireIdentical(t *testing.T, label string, wantSol *core.Solution, wantErr error, gotSol *core.Solution, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error mismatch: baseline %v, got %v", label, wantErr, gotErr)
	}
	if wantErr != nil {
		if !errors.Is(gotErr, core.ErrNoSolution) && !errors.Is(gotErr, ErrTooLarge) {
			t.Fatalf("%s: unexpected error class: %v", label, gotErr)
		}
		return
	}
	if math.Float64bits(wantSol.Result.Energy) != math.Float64bits(gotSol.Result.Energy) {
		t.Fatalf("%s: energy bits differ: baseline %.17g, got %.17g",
			label, wantSol.Result.Energy, gotSol.Result.Energy)
	}
	if !reflect.DeepEqual(wantSol.Mapping, gotSol.Mapping) {
		t.Fatalf("%s: mapping bytes differ:\nbaseline %+v\ngot      %+v",
			label, wantSol.Mapping, gotSol.Mapping)
	}
}

// TestBnBMatchesExhaustiveBitIdentical is the tentpole equivalence proof:
// on every panel instance the branch-and-bound engine returns the exact
// energy bits and mapping bytes of the exhaustive enumeration, across 1/2/4
// workers, seeded and unseeded, General and NoSymmetry variants included.
func TestBnBMatchesExhaustiveBitIdentical(t *testing.T) {
	type inst struct {
		name string
		g    *spg.Graph
		pl   *platform.Platform
		T    float64
	}
	var panel []inst
	dct := dctGraph(t)
	var dctWork float64
	for _, st := range dct.Stages {
		dctWork += st.Weight
	}
	panel = append(panel,
		inst{"dct-2x2", dct, platform.XScale(2, 2), 0.45 * dctWork},
		inst{"dct-2x2-tight", dct, platform.XScale(2, 2), 0.3 * dctWork},
		inst{"dct-2x3", dct, platform.XScale(2, 3), 0.3 * dctWork},
	)
	for seed := int64(0); seed < 4; seed++ {
		g := randomSPG(300+seed, 7, 0.01, 0.05, 0.0001, 0.001)
		panel = append(panel, inst{name: "rand-2x2", g: g, pl: platform.XScale(2, 2), T: 0.1})
	}
	panel = append(panel,
		inst{"rand-2x3", randomSPG(310, 7, 0.01, 0.05, 0.0001, 0.001), platform.XScale(2, 3), 0.08},
		inst{"rand-1x4", randomSPG(311, 7, 0.01, 0.05, 0.0001, 0.001), platform.XScale(1, 4), 0.08},
		inst{"rand-4x1", randomSPG(311, 7, 0.01, 0.05, 0.0001, 0.001), platform.XScale(4, 1), 0.08},
		// Capacity-tight rows exercise the orbit-recovery path under bounds.
		inst{"tight-2x2", randomSPG(320, 6, 0.005, 0.02, 0.3, 0.95), platform.XScale(2, 2), 0.05},
	)
	if testing.Short() {
		panel = panel[:5]
	}

	for _, in := range panel {
		for _, general := range []bool{false, true} {
			for _, noSym := range []bool{false, true} {
				if noSym && (general || testing.Short()) {
					continue // trim the matrix; NoSymmetry already diffed per instance
				}
				base := NewSolver()
				base.Exhaustive = true
				base.General = general
				base.NoSymmetry = noSym
				ci := core.Instance{Graph: in.g, Platform: in.pl, Period: in.T}
				wantSol, wantErr := base.Solve(ci)
				if wantErr != nil && !errors.Is(wantErr, core.ErrNoSolution) {
					t.Fatalf("%s general=%v: exhaustive baseline failed unexpectedly: %v", in.name, general, wantErr)
				}
				for _, workers := range []int{1, 2, 4} {
					for _, noSeed := range []bool{false, true} {
						bnb := NewSolver()
						bnb.General = general
						bnb.NoSymmetry = noSym
						bnb.Workers = workers
						bnb.NoSeed = noSeed
						gotSol, gotErr := bnb.Solve(ci)
						label := in.name
						if general {
							label += "/general"
						}
						if noSym {
							label += "/nosym"
						}
						if noSeed {
							label += "/noseed"
						}
						requireIdentical(t, label, wantSol, wantErr, gotSol, gotErr)
						_ = workers
					}
				}
			}
		}
	}
}

// TestBnBSeedAndScratchInvariance pins the remaining determinism knobs: the
// seeding RNG seed and an attached scratch arena change nothing about the
// result.
func TestBnBSeedAndScratchInvariance(t *testing.T) {
	g := randomSPG(42, 8, 0.01, 0.05, 0.0005, 0.002)
	pl := platform.XScale(2, 3)
	ref, refErr := NewSolver().Solve(core.Instance{Graph: g, Platform: pl, Period: 0.08})
	if refErr != nil {
		t.Fatal(refErr)
	}
	for _, seed := range []int64{0, 1, 7, 12345} {
		for _, workers := range []int{1, 3} {
			s := NewSolver()
			s.Seed = seed
			s.Workers = workers
			sc := core.NewScratch()
			sol, err := s.Solve(core.Instance{Graph: g, Platform: pl, Period: 0.08, Scratch: sc})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			requireIdentical(t, "seed-scratch", ref, refErr, sol, err)
		}
	}
}

// TestBnBStatsAndPruning sanity-checks the stats surface: the bounds must
// actually remove work, and the seed must be recorded.
func TestBnBStatsAndPruning(t *testing.T) {
	g := randomSPG(77, 8, 0.01, 0.05, 0.0005, 0.002)
	ci := core.Instance{Graph: g, Platform: platform.XScale(2, 3), Period: 0.08}

	base := NewSolver()
	base.Exhaustive = true
	_, baseStats, err := base.SolveStats(context.Background(), ci)
	if err != nil {
		t.Fatal(err)
	}
	bnb := NewSolver()
	_, bnbStats, err := bnb.SolveStats(context.Background(), ci)
	if err != nil {
		t.Fatal(err)
	}
	if !bnbStats.Seeded {
		t.Error("expected a heuristic incumbent seed")
	}
	if bnbStats.PrunedPartitions == 0 && bnbStats.PrunedPlacements == 0 {
		t.Error("bounds pruned nothing")
	}
	if bnbStats.Placements >= baseStats.Placements {
		t.Errorf("B&B evaluated %d placements, exhaustive %d — bounds removed nothing",
			bnbStats.Placements, baseStats.Placements)
	}
	if bnbStats.Units < 2 {
		t.Errorf("expected a multi-unit decomposition, got %d units", bnbStats.Units)
	}
}

// TestBnBBudgetTruncation: the branch-and-bound engine never passes off an
// unproven mapping — a spent per-unit budget is ErrTooLarge, where the
// exhaustive engine keeps its best-effort answer.
func TestBnBBudgetTruncation(t *testing.T) {
	g := randomSPG(55, 8, 0.01, 0.05, 0.0001, 0.001)
	ci := core.Instance{Graph: g, Platform: platform.XScale(2, 3), Period: 0.08}

	bnb := NewSolver()
	bnb.MaxPlacements = 3
	bnb.NoSeed = true
	_, st, err := bnb.SolveStats(context.Background(), ci)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("B&B with budget 3: want ErrTooLarge, got %v", err)
	}
	if !st.Truncated {
		t.Error("B&B truncation not reported in stats")
	}

	base := NewSolver()
	base.Exhaustive = true
	base.MaxPlacements = 50
	sol, st2, err := base.SolveStats(context.Background(), ci)
	if err != nil {
		t.Fatalf("exhaustive best-effort: %v", err)
	}
	if !st2.Truncated {
		t.Error("exhaustive truncation not reported in stats")
	}
	if sol == nil {
		t.Error("exhaustive best-effort returned no solution")
	}
}

// TestSolveContextCancellation covers the ctxflow satellite: both engines
// poll the context and return its error promptly. The instance and solver
// configuration are chosen so each engine runs well past the deadline when
// left alone (the General+NoSymmetry+NoSeed search takes >100ms single-
// threaded; the exhaustive engine runs for seconds), making the mid-flight
// assertions deterministic.
func TestSolveContextCancellation(t *testing.T) {
	ci := frontier4x3Instance(t)

	for _, exhaustive := range []bool{false, true} {
		s := NewSolver()
		s.Exhaustive = exhaustive
		s.NoSeed = true
		s.General = true
		s.NoSymmetry = true
		s.Workers = 1

		// Pre-cancelled: no search at all.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.SolveContext(ctx, ci); !errors.Is(err, context.Canceled) {
			t.Fatalf("exhaustive=%v pre-cancelled: want context.Canceled, got %v", exhaustive, err)
		}

		// Mid-flight: the enumeration loops must notice within the polling
		// cadence, far under the headroom asserted here.
		ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
		start := time.Now()
		_, err := s.SolveContext(ctx2, ci)
		elapsed := time.Since(start)
		cancel2()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("exhaustive=%v mid-flight: want DeadlineExceeded, got %v (after %v)", exhaustive, err, elapsed)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("exhaustive=%v: cancellation took %v", exhaustive, elapsed)
		}
	}
}

// frontierInstance is the 3x3 demonstration row: big enough that the
// exhaustive engine burns its whole default budget, small enough that the
// bounded search proves optimality in well under a second.
func frontierInstance(t testing.TB) core.Instance {
	t.Helper()
	g, err := randspg.Generate(randspg.Params{N: 10, Elevation: 4, Seed: 9, CCR: 10})
	if err != nil {
		t.Fatal(err)
	}
	var w float64
	for _, st := range g.Stages {
		w += st.Weight
	}
	return core.Instance{Graph: g, Platform: platform.XScale(3, 3), Period: 0.20 * w}
}

func frontier4x3Instance(t testing.TB) core.Instance {
	t.Helper()
	g, err := randspg.Generate(randspg.Params{N: 11, Elevation: 4, Seed: 2, CCR: 10})
	if err != nil {
		t.Fatal(err)
	}
	var w float64
	for _, st := range g.Stages {
		w += st.Weight
	}
	return core.Instance{Graph: g, Platform: platform.XScale(4, 3), Period: 0.22 * w}
}

// TestBnBGridFrontier demonstrates the new frontier: 3x3 and 4x3 instances
// solved to proven optimality inside the default budget. The exhaustive
// engine, capped at a small slice of its default budget here to keep the
// test fast, cannot even get through that slice's worth of placements — the
// env-gated TestBnBFrontierExhaustiveDefaultBudget run in CI shows the full
// default budget is insufficient too.
func TestBnBGridFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier demonstration skipped in -short")
	}
	for _, tc := range []struct {
		name string
		ci   core.Instance
	}{
		{"3x3", frontierInstance(t)},
		{"4x3", frontier4x3Instance(t)},
	} {
		sol, st, err := NewSolver().SolveStats(context.Background(), tc.ci)
		if err != nil {
			t.Fatalf("%s: B&B failed: %v", tc.name, err)
		}
		if st.Truncated {
			t.Fatalf("%s: B&B truncated — no optimality proof", tc.name)
		}
		if st.SeedEnergy != 0 && sol.Result.Energy > st.SeedEnergy*(1+1e-9) {
			t.Fatalf("%s: optimum %.17g worse than its own seed %.17g", tc.name, sol.Result.Energy, st.SeedEnergy)
		}
		// The exhaustive engine truncates a 500k-placement slice without
		// reaching the optimum's neighbourhood being provably explored.
		base := NewSolver()
		base.Exhaustive = true
		base.MaxPlacements = 500_000
		bSol, bSt, bErr := base.SolveStats(context.Background(), tc.ci)
		if bErr == nil {
			if !bSt.Truncated {
				t.Fatalf("%s: exhaustive finished a 500k slice — instance too easy for the frontier claim", tc.name)
			}
			if bSol.Result.Energy < sol.Result.Energy*(1-1e-9) {
				t.Fatalf("%s: exhaustive best-effort %.17g beats the proven optimum %.17g",
					tc.name, bSol.Result.Energy, sol.Result.Energy)
			}
		}
		t.Logf("%s: optimum %.6g J, %d placements evaluated (%d units, pruned %d partition / %d placement nodes), seed %.6g J",
			tc.name, sol.Result.Energy, st.Placements, st.Units, st.PrunedPartitions, st.PrunedPlacements, st.SeedEnergy)
	}
}

// TestBnBFrontierExhaustiveDefaultBudget is the CI-only proof that the
// exhaustive engine cannot finish the 3x3 frontier instance inside its full
// default budget (30M placements); it runs for minutes, so it is gated on
// SPGCMP_EXACT_FRONTIER=1 and exercised by the bench-exact job.
func TestBnBFrontierExhaustiveDefaultBudget(t *testing.T) {
	if os.Getenv("SPGCMP_EXACT_FRONTIER") == "" {
		t.Skip("set SPGCMP_EXACT_FRONTIER=1 to run the default-budget exhaustive frontier proof")
	}
	ci := frontierInstance(t)
	sol, st, err := NewSolver().SolveStats(context.Background(), ci)
	if err != nil || st.Truncated {
		t.Fatalf("B&B frontier solve failed: err=%v truncated=%v", err, st.Truncated)
	}
	base := NewSolver()
	base.Exhaustive = true
	bSol, bSt, bErr := base.SolveStats(context.Background(), ci)
	if bErr == nil && !bSt.Truncated {
		t.Fatalf("exhaustive finished inside the default budget — frontier claim void")
	}
	if bErr == nil && bSol.Result.Energy < sol.Result.Energy*(1-1e-9) {
		t.Fatalf("exhaustive best-effort %.17g beats the proven optimum %.17g", bSol.Result.Energy, sol.Result.Energy)
	}
	t.Logf("exhaustive: truncated=%v after %d placements; B&B proved %.6g J with %d placements",
		bSt.Truncated, bSt.Placements, sol.Result.Energy, st.Placements)
}

// TestOrbitRecoveryFailurePath pins the rare placement-symmetry corner the
// recovery loop exists for: the lexicographically canonical member of the
// winning orbit routes over a saturated link and is invalid, while a
// reflected twin fits. The sweep below provably hits that corner (the test
// fails if it stops doing so), and the symmetry-pruned solver must still
// match the NoSymmetry baseline bit for bit on every instance.
func TestOrbitRecoveryFailurePath(t *testing.T) {
	pl := platform.XScale(2, 2)
	syms := gridSymmetries(2, 2)
	hits := 0
	for seed := int64(0); seed < 40; seed++ {
		g := randomSPG(7000+seed, 6, 0.005, 0.02, 0.3, 0.95)
		ci := core.Instance{Graph: g, Platform: pl, Period: 0.05}

		full := NewSolver()
		full.NoSymmetry = true
		fullSol, errF := full.Solve(ci)
		prunedSol, errP := NewSolver().Solve(ci)
		requireIdentical(t, "orbit-recovery", fullSol, errF, prunedSol, errP)
		if errF != nil {
			continue
		}

		// Reconstruct the winner's placement vector (clusters in order of
		// first appearance, as the enumeration builds them) and check
		// whether its canonical orbit representative is invalid.
		place := placementVector(fullSol.Mapping, pl)
		canonical := append([]int(nil), place...)
		for _, perm := range syms {
			img := make([]int, len(place))
			for i, c := range place {
				img[i] = perm[c]
			}
			if lexLess(img, canonical) {
				canonical = img
			}
		}
		if reflect.DeepEqual(canonical, place) {
			continue // the winner is its own canonical form; recovery not involved
		}
		cm := remapped(fullSol.Mapping, place, canonical, g, pl, ci.Period)
		if cm == nil {
			hits++ // canonical twin cannot even downgrade speeds
			continue
		}
		if _, err := mapping.Evaluate(g, pl, cm, ci.Period); err != nil {
			hits++ // canonical twin invalid: the winner was found via recovery
		}
	}
	if hits == 0 {
		t.Fatal("sweep never hit the orbit-recovery failure path; widen the panel")
	}
	t.Logf("orbit-recovery failure path hit on %d/40 instances", hits)
}

// placementVector lists the distinct core indices of m in order of first
// appearance over the stages — the placeBuf the enumeration would have built.
func placementVector(m *mapping.Mapping, pl *platform.Platform) []int {
	var place []int
	seen := make(map[int]bool)
	for _, c := range m.Alloc {
		idx := c.U*pl.Q + c.V
		if !seen[idx] {
			seen[idx] = true
			place = append(place, idx)
		}
	}
	return place
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// remapped rebuilds m with each cluster moved from place[i] to target[i],
// re-running the speed downgrade; nil when no feasible speeds exist.
func remapped(m *mapping.Mapping, place, target []int, g *spg.Graph, pl *platform.Platform, T float64) *mapping.Mapping {
	to := make(map[int]int, len(place))
	for i := range place {
		to[place[i]] = target[i]
	}
	nm := mapping.New(g.N(), pl)
	for i, c := range m.Alloc {
		idx := to[c.U*pl.Q+c.V]
		nm.Alloc[i] = platform.Core{U: idx / pl.Q, V: idx % pl.Q}
	}
	if !nm.DowngradeSpeeds(g, pl, T) {
		return nil
	}
	return nm
}
