package exact

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"spgcmp/internal/core"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

func chain(t testing.TB, weights []float64, vols []float64) *spg.Graph {
	t.Helper()
	g, err := spg.Chain(weights, vols)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExactSolvesTinyChain(t *testing.T) {
	g := chain(t, []float64{0.05, 0.05, 0.05}, []float64{0.001, 0.001})
	inst := core.Instance{Graph: g, Platform: platform.XScale(2, 2), Period: 0.2}
	sol, err := NewSolver().Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Energy() <= 0 {
		t.Fatalf("energy = %g", sol.Energy())
	}
	// The XScale power curve is strongly superlinear: three cores at
	// 0.4 GHz (170 mW) beat one core at 0.8 GHz (900 mW) despite paying the
	// leakage three times. Optimum: 3 cores on a 1-hop chain placement.
	if sol.Result.ActiveCores != 3 {
		t.Errorf("active cores = %d, want 3", sol.Result.ActiveCores)
	}
	want := 3*(inst.Platform.LeakPower*0.2+0.05/0.4*0.17) + 2*0.001*inst.Platform.EnergyPerGB
	if math.Abs(sol.Energy()-want) > 1e-9 {
		t.Errorf("energy = %.9g, want %.9g", sol.Energy(), want)
	}
}

func TestExactRejectsLargeInstances(t *testing.T) {
	w := make([]float64, 20)
	v := make([]float64, 19)
	for i := range w {
		w[i] = 0.01
	}
	g := chain(t, w, v)
	inst := core.Instance{Graph: g, Platform: platform.XScale(2, 2), Period: 1}
	if _, err := NewSolver().Solve(inst); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("error = %v, want ErrTooLarge", err)
	}
}

func TestExactInfeasible(t *testing.T) {
	g := chain(t, []float64{0.5, 0.5}, []float64{0.001})
	inst := core.Instance{Graph: g, Platform: platform.XScale(2, 2), Period: 0.1}
	if _, err := NewSolver().Solve(inst); !errors.Is(err, core.ErrNoSolution) {
		t.Fatalf("error = %v, want ErrNoSolution", err)
	}
}

// TestDPA1DMatchesExactOnUniLine: Theorem 1 states the uni-directional
// uni-line DP is optimal; on a 1xq platform (where the snake is the line
// itself) the exhaustive solver must agree for chains, and never beat DPA1D
// by more than floating-point noise.
func TestDPA1DMatchesExactOnUniLine(t *testing.T) {
	pl := platform.XScale(1, 4)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 4 + rng.Intn(4)
		w := make([]float64, k)
		v := make([]float64, k-1)
		for i := range w {
			w[i] = 0.01 + 0.04*rng.Float64()
		}
		for i := range v {
			v[i] = 0.001 * rng.Float64()
		}
		g := chain(t, w, v)
		inst := core.Instance{Graph: g, Platform: pl, Period: 0.08}

		exactSol, errE := NewSolver().Solve(inst)
		dpaSol, errD := core.NewDPA1D().Solve(inst)
		if (errE == nil) != (errD == nil) {
			t.Fatalf("seed %d: exact err=%v dpa err=%v", seed, errE, errD)
		}
		if errE != nil {
			continue
		}
		if math.Abs(exactSol.Energy()-dpaSol.Energy()) > 1e-9*math.Max(1, exactSol.Energy()) {
			t.Errorf("seed %d: exact %.9g vs DPA1D %.9g", seed, exactSol.Energy(), dpaSol.Energy())
		}
	}
}

// TestExactLowerBoundsHeuristics: on small general SPGs the exhaustive
// optimum must lower-bound every heuristic (same XY routing rules).
func TestExactLowerBoundsHeuristics(t *testing.T) {
	pl := platform.XScale(2, 2)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var build func(n int) *spg.Graph
		build = func(n int) *spg.Graph {
			if n <= 2 {
				return spg.Primitive(1, 1, 1)
			}
			k := 1 + rng.Intn(n-1)
			if rng.Intn(2) == 0 {
				return spg.Series(build(k), build(n-k))
			}
			return spg.Parallel(build(k), build(n-k))
		}
		g := build(7)
		spg.RandomizeWeights(g, rng, 0.01, 0.05)
		spg.RandomizeVolumes(g, rng, 0.0001, 0.001)
		inst := core.Instance{Graph: g, Platform: pl, Period: 0.15}

		exactSol, err := NewSolver().Solve(inst)
		if err != nil {
			if errors.Is(err, core.ErrNoSolution) {
				continue
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, h := range core.All(seed) {
			sol, err := h.Solve(inst)
			if err != nil {
				continue
			}
			if sol.Energy() < exactSol.Energy()*(1-1e-9) {
				t.Errorf("seed %d: %s energy %.9g beats exact %.9g",
					seed, h.Name(), sol.Energy(), exactSol.Energy())
			}
		}
	}
}

func TestWriteILPSmoke(t *testing.T) {
	g := chain(t, []float64{0.02, 0.03, 0.02}, []float64{0.001, 0.002})
	inst := core.Instance{Graph: g, Platform: platform.XScale(2, 2), Period: 0.1}
	var buf bytes.Buffer
	stats, err := WriteILP(&buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"Minimize", "Subject To", "Binary", "End"} {
		if !strings.Contains(text, want) {
			t.Errorf("LP output missing section %q", want)
		}
	}
	// 3 stages x 5 speeds x 4 cores + 5x4 m-vars + 2 pairs x borders.
	if stats.Variables < 80 {
		t.Errorf("suspiciously few variables: %d", stats.Variables)
	}
	if stats.Constraints < 100 {
		t.Errorf("suspiciously few constraints: %d", stats.Constraints)
	}
	if !strings.Contains(text, "x_1_1_1_1") {
		t.Error("missing allocation variable x_1_1_1_1")
	}
	if !strings.Contains(text, "m_1_1_1") {
		t.Error("missing speed variable m_1_1_1")
	}
	if !strings.Contains(text, "cE_1_2_1_1") {
		t.Error("missing communication variable cE_1_2_1_1")
	}
}

func TestWriteILPCountsParallelEdgesOnce(t *testing.T) {
	// Two parallel edges between the same stages must aggregate into one
	// delta(i,j).
	g := spg.Parallel(spg.Primitive(0.01, 0.01, 0.5), spg.Primitive(0.01, 0.01, 0.5))
	inst := core.Instance{Graph: g, Platform: platform.XScale(2, 2), Period: 1}
	var buf bytes.Buffer
	if _, err := WriteILP(&buf, inst); err != nil {
		t.Fatal(err)
	}
	_, binarySection, found := strings.Cut(buf.String(), "Binary")
	if !found {
		t.Fatal("no Binary section")
	}
	if c := strings.Count(binarySection, "cE_1_2_1_1\n"); c != 1 {
		t.Errorf("cE_1_2_1_1 declared %d times, want 1", c)
	}
}

// TestGeneralMappingsLowerBoundDAGPartition implements the paper's
// future-work comparison: dropping the DAG-partition rule can only help, and
// on interleaved-weight chains it strictly helps (a 2-PARTITION-style
// balance that contiguous clusters cannot reach).
func TestGeneralMappingsLowerBoundDAGPartition(t *testing.T) {
	pl := platform.XScale(1, 2) // two cores
	// Weights 0.4, 0.4, 0.1, 0.1: contiguous splits give at best 0.5/0.5?
	// No: {0.4},{0.4,0.1,0.1} = 0.4/0.6, {0.4,0.4},{0.1,0.1} = 0.8/0.2,
	// {0.4,0.4,0.1},{0.1} = 0.9/0.1. General: {0.4,0.1},{0.4,0.1} = 0.5/0.5.
	// At T = 0.625 s the balanced split runs both cores at 0.8 GHz while
	// every DAG-partition needs at least one core at 1 GHz.
	g := chain(t, []float64{0.4, 0.4, 0.1, 0.1}, []float64{1e-6, 1e-6, 1e-6})
	inst := core.Instance{Graph: g, Platform: pl, Period: 0.625}

	dag, err := NewSolver().Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewSolver()
	gen.General = true
	genSol, err := gen.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if genSol.Energy() > dag.Energy()+1e-12 {
		t.Errorf("general optimum %.9g worse than DAG-partition %.9g", genSol.Energy(), dag.Energy())
	}
	if genSol.Energy() >= dag.Energy()-1e-9 {
		t.Errorf("expected a strict gap: general %.9g vs DAG-partition %.9g", genSol.Energy(), dag.Energy())
	}
}

// TestGeneralNeverWorseProperty checks general <= DAG-partition across random
// small instances.
func TestGeneralNeverWorseProperty(t *testing.T) {
	pl := platform.XScale(2, 2)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var build func(n int) *spg.Graph
		build = func(n int) *spg.Graph {
			if n <= 2 {
				return spg.Primitive(1, 1, 1)
			}
			k := 1 + rng.Intn(n-1)
			if rng.Intn(2) == 0 {
				return spg.Series(build(k), build(n-k))
			}
			return spg.Parallel(build(k), build(n-k))
		}
		g := build(6)
		spg.RandomizeWeights(g, rng, 0.02, 0.08)
		spg.RandomizeVolumes(g, rng, 0.0001, 0.001)
		inst := core.Instance{Graph: g, Platform: pl, Period: 0.2}
		dag, errD := NewSolver().Solve(inst)
		gen := NewSolver()
		gen.General = true
		genSol, errG := gen.Solve(inst)
		if errD != nil {
			if errG == nil {
				continue // general found a solution where DAG-partition failed: fine
			}
			continue
		}
		if errG != nil {
			t.Fatalf("seed %d: general failed where DAG-partition succeeded", seed)
		}
		if genSol.Energy() > dag.Energy()*(1+1e-9) {
			t.Errorf("seed %d: general %.9g > DAG-partition %.9g", seed, genSol.Energy(), dag.Energy())
		}
	}
}

// TestGridSymmetries: group sizes and permutation validity. A 2x2 (or any
// square) grid has the full dihedral group of order 8 (7 non-identity
// elements); rectangular grids keep the 3 non-identity axis flips; a 1xq
// line keeps only its mirror.
func TestGridSymmetries(t *testing.T) {
	cases := []struct{ p, q, want int }{
		{2, 2, 7}, {3, 3, 7}, {2, 3, 3}, {4, 4, 7}, {1, 4, 1}, {1, 1, 0},
		// Degenerate shapes: single columns mirror like single rows (one
		// flip survives deduplication), and the 2x1/1x2 lines are the
		// smallest grids with any symmetry at all. The 1x7/7x1 pair pins
		// that the row/column orientations produce the same group size.
		{4, 1, 1}, {7, 1, 1}, {1, 7, 1}, {2, 1, 1}, {1, 2, 1},
	}
	for _, c := range cases {
		syms := gridSymmetries(c.p, c.q)
		if len(syms) != c.want {
			t.Errorf("%dx%d: %d symmetries, want %d", c.p, c.q, len(syms), c.want)
		}
		for _, perm := range syms {
			seen := make([]bool, c.p*c.q)
			identity := true
			for i, j := range perm {
				if j < 0 || j >= c.p*c.q || seen[j] {
					t.Fatalf("%dx%d: not a permutation: %v", c.p, c.q, perm)
				}
				seen[j] = true
				if i != j {
					identity = false
				}
			}
			if identity {
				t.Errorf("%dx%d: identity leaked into the symmetry list", c.p, c.q)
			}
			// Adjacency preservation: a grid automorphism maps neighbours to
			// neighbours.
			pl := platform.XScale(c.p, c.q)
			for u := 0; u < c.p; u++ {
				for v := 0; v < c.q; v++ {
					for _, d := range [][2]int{{0, 1}, {1, 0}} {
						a := platform.Core{U: u, V: v}
						b := platform.Core{U: u + d[0], V: v + d[1]}
						if !pl.InBounds(b) {
							continue
						}
						ai, bi := perm[u*c.q+v], perm[b.U*c.q+b.V]
						sa := platform.Core{U: ai / c.q, V: ai % c.q}
						sb := platform.Core{U: bi / c.q, V: bi % c.q}
						if !pl.Adjacent(sa, sb) {
							t.Fatalf("%dx%d: symmetry breaks adjacency %v-%v -> %v-%v", c.p, c.q, a, b, sa, sb)
						}
					}
				}
			}
		}
	}
}

// TestSymmetryPruningEquivalence: the symmetry-reduced enumeration must
// agree with the unpruned one on solvability and on the optimal energy, for
// both DAG-partition and general mappings. Orbit members are equal-energy in
// exact arithmetic but their float sums can differ in the last ulps (core
// energies accumulate in a permuted order), so energies are compared within
// a tight relative tolerance rather than bitwise.
func TestSymmetryPruningEquivalence(t *testing.T) {
	grids := []struct{ p, q int }{{2, 2}, {2, 3}, {1, 4}}
	for _, grid := range grids {
		pl := platform.XScale(grid.p, grid.q)
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(200 + seed))
			var build func(n int) *spg.Graph
			build = func(n int) *spg.Graph {
				if n <= 2 {
					return spg.Primitive(1, 1, 1)
				}
				k := 1 + rng.Intn(n-1)
				if rng.Intn(2) == 0 {
					return spg.Series(build(k), build(n-k))
				}
				return spg.Parallel(build(k), build(n-k))
			}
			g := build(6)
			spg.RandomizeWeights(g, rng, 0.01, 0.05)
			spg.RandomizeVolumes(g, rng, 0.0001, 0.001)
			for _, general := range []bool{false, true} {
				inst := core.Instance{Graph: g, Platform: pl, Period: 0.15}
				pruned := NewSolver()
				pruned.General = general
				full := NewSolver()
				full.General = general
				full.NoSymmetry = true
				sp, errP := pruned.Solve(inst)
				sf, errF := full.Solve(inst)
				if (errP == nil) != (errF == nil) {
					t.Fatalf("%dx%d seed %d general=%v: pruned err %v, full err %v",
						grid.p, grid.q, seed, general, errP, errF)
				}
				if errP != nil {
					continue
				}
				if math.Abs(sp.Energy()-sf.Energy()) > 1e-12*math.Max(1, sf.Energy()) {
					t.Errorf("%dx%d seed %d general=%v: pruned %.17g != full %.17g",
						grid.p, grid.q, seed, general, sp.Energy(), sf.Energy())
				}
			}
		}
	}
}

// TestSymmetryPruningTightCapacity drives link loads to the capacity wall
// (huge volumes, one-period chains) where the orbit-recovery path matters:
// the canonical representative of an orbit may route over a saturated link
// while a reflected twin fits.
func TestSymmetryPruningTightCapacity(t *testing.T) {
	pl := platform.XScale(2, 2)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		var build func(n int) *spg.Graph
		build = func(n int) *spg.Graph {
			if n <= 2 {
				return spg.Primitive(1, 1, 1)
			}
			k := 1 + rng.Intn(n-1)
			if rng.Intn(2) == 0 {
				return spg.Series(build(k), build(n-k))
			}
			return spg.Parallel(build(k), build(n-k))
		}
		g := build(6)
		spg.RandomizeWeights(g, rng, 0.005, 0.02)
		// Volumes near BW*T: with T = 0.05 s the per-link budget is 0.96 GB.
		spg.RandomizeVolumes(g, rng, 0.3, 0.95)
		inst := core.Instance{Graph: g, Platform: pl, Period: 0.05}
		pruned, errP := NewSolver().Solve(inst)
		full := NewSolver()
		full.NoSymmetry = true
		fullSol, errF := full.Solve(inst)
		if (errP == nil) != (errF == nil) {
			t.Fatalf("seed %d: pruned err %v, full err %v", seed, errP, errF)
		}
		if errP != nil {
			continue
		}
		if math.Abs(pruned.Energy()-fullSol.Energy()) > 1e-12*math.Max(1, fullSol.Energy()) {
			t.Errorf("seed %d: pruned %.17g != full %.17g", seed, pruned.Energy(), fullSol.Energy())
		}
	}
}
