package exact

import (
	"bufio"
	"fmt"
	"io"

	"spgcmp/internal/core"
)

// ILPStats summarizes an emitted program.
type ILPStats struct {
	Variables   int
	Constraints int
}

// WriteILP emits the integer linear program of Section 4.4 for the instance
// in CPLEX LP format, suitable for any LP/MIP solver. The program uses the
// paper's variables:
//
//	x_i_k_u_v  — stage i runs on core (u,v) at speed k;
//	m_k_u_v    — core (u,v) is operated at speed k;
//	cN/cS/cW/cE_i_j_u_v — the communication of edge (i,j) leaves core (u,v)
//	             towards its north/south/west/east neighbour.
//
// Communication variables are only created for stage pairs that actually
// share an edge (the paper fixes the others to zero through the l(i,j)
// constants), and border-exiting directions are omitted. Indices are 1-based
// as in the paper.
func WriteILP(w io.Writer, inst core.Instance) (ILPStats, error) {
	inst = inst.Analyzed()
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	if err := inst.Validate(); err != nil {
		return ILPStats{}, err
	}
	bw := bufio.NewWriter(w)
	var stats ILPStats

	n := g.N()
	nk := len(pl.Speeds)
	p, q := pl.P, pl.Q

	// Aggregate parallel edges into per-pair volumes delta(i,j).
	type pair struct{ i, j int }
	delta := make(map[pair]float64)
	var pairs []pair
	for _, e := range g.Edges {
		pr := pair{e.Src, e.Dst}
		if _, ok := delta[pr]; !ok {
			pairs = append(pairs, pr)
		}
		delta[pr] += e.Volume
	}
	reach := inst.Analysis.Reachability()

	xName := func(i, k, u, v int) string { return fmt.Sprintf("x_%d_%d_%d_%d", i+1, k+1, u+1, v+1) }
	mName := func(k, u, v int) string { return fmt.Sprintf("m_%d_%d_%d", k+1, u+1, v+1) }
	// dir: 0=N (u-1), 1=S (u+1), 2=W (v-1), 3=E (v+1)
	dirName := [4]string{"cN", "cS", "cW", "cE"}
	dirOK := func(d, u, v int) bool {
		switch d {
		case 0:
			return u > 0
		case 1:
			return u < p-1
		case 2:
			return v > 0
		default:
			return v < q-1
		}
	}
	cName := func(d int, pr pair, u, v int) string {
		return fmt.Sprintf("%s_%d_%d_%d_%d", dirName[d], pr.i+1, pr.j+1, u+1, v+1)
	}
	// cPlus writes the sum of the existing direction variables at (u,v).
	cPlus := func(pr pair, u, v int) string {
		s := ""
		for d := 0; d < 4; d++ {
			if !dirOK(d, u, v) {
				continue
			}
			if s != "" {
				s += " + "
			}
			s += cName(d, pr, u, v)
		}
		return s
	}

	fmt.Fprintf(bw, "\\ MinEnergy(T) ILP (Section 4.4) — n=%d stages, %d speeds, %dx%d CMP, T=%g s\n",
		n, nk, p, q, T)
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	first := true
	term := func(coef float64, name string) {
		if coef == 0 {
			return
		}
		if first {
			fmt.Fprintf(bw, " %.12g %s", coef, name)
			first = false
		} else {
			fmt.Fprintf(bw, "\n      + %.12g %s", coef, name)
		}
	}
	eStat := pl.LeakPower * T
	for k := 0; k < nk; k++ {
		eDyn := pl.DynPower[k] / pl.Speeds[k]
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				term(eStat, mName(k, u, v))
				for i := 0; i < n; i++ {
					term(g.Stages[i].Weight*eDyn, xName(i, k, u, v))
				}
			}
		}
	}
	for _, pr := range pairs {
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				for d := 0; d < 4; d++ {
					if dirOK(d, u, v) {
						term(delta[pr]*pl.EnergyPerGB, cName(d, pr, u, v))
					}
				}
			}
		}
	}
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	cid := 0
	emit := func(format string, args ...interface{}) {
		cid++
		stats.Constraints++
		fmt.Fprintf(bw, " c%d: ", cid)
		fmt.Fprintf(bw, format, args...)
		fmt.Fprintln(bw)
	}

	// Allocation: each stage on exactly one (core, speed).
	for i := 0; i < n; i++ {
		s := ""
		for k := 0; k < nk; k++ {
			for u := 0; u < p; u++ {
				for v := 0; v < q; v++ {
					if s != "" {
						s += " + "
					}
					s += xName(i, k, u, v)
				}
			}
		}
		emit("%s = 1", s)
	}
	// Speed selection: a hosted stage forces the core's speed...
	for k := 0; k < nk; k++ {
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				for i := 0; i < n; i++ {
					emit("%s - %s >= 0", mName(k, u, v), xName(i, k, u, v))
				}
			}
		}
	}
	// ... and each core runs at no more than one speed.
	for u := 0; u < p; u++ {
		for v := 0; v < q; v++ {
			s := ""
			for k := 0; k < nk; k++ {
				if s != "" {
					s += " + "
				}
				s += mName(k, u, v)
			}
			emit("%s <= 1", s)
		}
	}

	// Communication constraints per edge pair.
	for _, pr := range pairs {
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				cp := cPlus(pr, u, v)
				if cp == "" {
					continue // 1x1 grid: no directions exist
				}
				// At most one outgoing direction per core for this edge.
				emit("%s <= 1", cp)
				// Co-located endpoints suppress the communication.
				for k := 0; k < nk; k++ {
					emit("%s + %s + %s <= 2", xName(pr.i, k, u, v), xName(pr.j, k, u, v), cp)
				}
				// Source core initiates the communication when the
				// destination lives elsewhere.
				for k := 0; k < nk; k++ {
					rhs := ""
					for kp := 0; kp < nk; kp++ {
						for up := 0; up < p; up++ {
							for vp := 0; vp < q; vp++ {
								if up == u && vp == v {
									continue
								}
								rhs += " - " + xName(pr.j, kp, up, vp)
							}
						}
					}
					emit("%s - %s%s >= -1", cp, xName(pr.i, k, u, v), rhs)
				}
			}
		}
	}

	// Forwarding and stopping conditions.
	type dxy struct{ du, dv int }
	deltaDir := [4]dxy{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
	for _, pr := range pairs {
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				for d := 0; d < 4; d++ {
					if !dirOK(d, u, v) {
						continue
					}
					nu, nv := u+deltaDir[d].du, v+deltaDir[d].dv
					cp := cPlus(pr, nu, nv)
					xsum := ""
					for k := 0; k < nk; k++ {
						if xsum != "" {
							xsum += " + "
						}
						xsum += xName(pr.j, k, nu, nv)
					}
					if cp == "" {
						cp = "0 " + xsum // degenerate; never happens on >=2x2
					}
					// c_dir <= c+_next + x_j_next  and  c+_next + x_j_next <= 2 - c_dir
					emit("%s + %s - %s >= 0", cp, xsum, cName(d, pr, u, v))
					emit("%s + %s + %s <= 2", cp, xsum, cName(d, pr, u, v))
				}
			}
		}
	}

	// Cycle prevention: incoming communications at a core are bounded by the
	// indicator that the destination is not yet reached... the paper bounds
	// the incoming degree by whether Si is mapped here (the communication may
	// only "appear" at its source). We emit the unified form: for every core,
	// sum of incoming directions <= sum_k x_i_k_u_v + ... conservative paper
	// version: incoming <= x_i at interior plus boundary variants.
	for _, pr := range pairs {
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				inc := ""
				add := func(s string) {
					if inc != "" {
						inc += " + "
					}
					inc += s
				}
				if u+1 < p {
					add(cName(0, pr, u+1, v)) // from south neighbour moving north
				}
				if u-1 >= 0 {
					add(cName(1, pr, u-1, v)) // from north neighbour moving south
				}
				if v+1 < q {
					add(cName(2, pr, u, v+1)) // from east neighbour moving west
				}
				if v-1 >= 0 {
					add(cName(3, pr, u, v-1)) // from west neighbour moving east
				}
				if inc == "" {
					continue
				}
				xsum := ""
				for k := 0; k < nk; k++ {
					xsum += " + " + xName(pr.i, k, u, v)
				}
				emit("%s -%s <= 1", inc, xsum)
			}
		}
	}

	// DAG-partition rule: if Si and Sj share a core and Si -> Si' -> Sj, then
	// Si' shares it too.
	for i := 0; i < n; i++ {
		for ip := 0; ip < n; ip++ {
			if ip == i || !reach.Reaches(i, ip) {
				continue
			}
			for j := 0; j < n; j++ {
				if j == i || j == ip || !reach.Reaches(ip, j) {
					continue
				}
				for k := 0; k < nk; k++ {
					for u := 0; u < p; u++ {
						for v := 0; v < q; v++ {
							emit("%s - %s - %s >= -1",
								xName(ip, k, u, v), xName(i, k, u, v), xName(j, k, u, v))
						}
					}
				}
			}
		}
	}

	// Period constraints: computations...
	for u := 0; u < p; u++ {
		for v := 0; v < q; v++ {
			for k := 0; k < nk; k++ {
				s := ""
				for i := 0; i < n; i++ {
					if g.Stages[i].Weight == 0 {
						continue
					}
					if s != "" {
						s += " + "
					}
					s += fmt.Sprintf("%.12g %s", g.Stages[i].Weight, xName(i, k, u, v))
				}
				if s == "" {
					continue
				}
				emit("%s - %.12g %s <= 0", s, T*pl.Speeds[k], mName(k, u, v))
			}
		}
	}
	// ... and link bandwidth per direction.
	for u := 0; u < p; u++ {
		for v := 0; v < q; v++ {
			for d := 0; d < 4; d++ {
				if !dirOK(d, u, v) {
					continue
				}
				s := ""
				for _, pr := range pairs {
					if delta[pr] == 0 {
						continue
					}
					if s != "" {
						s += " + "
					}
					s += fmt.Sprintf("%.12g %s", delta[pr], cName(d, pr, u, v))
				}
				if s == "" {
					continue
				}
				emit("%s <= %.12g", s, T*pl.BW)
			}
		}
	}

	// Binary variable declarations.
	fmt.Fprintln(bw, "Binary")
	for i := 0; i < n; i++ {
		for k := 0; k < nk; k++ {
			for u := 0; u < p; u++ {
				for v := 0; v < q; v++ {
					fmt.Fprintf(bw, " %s\n", xName(i, k, u, v))
					stats.Variables++
				}
			}
		}
	}
	for k := 0; k < nk; k++ {
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				fmt.Fprintf(bw, " %s\n", mName(k, u, v))
				stats.Variables++
			}
		}
	}
	for _, pr := range pairs {
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				for d := 0; d < 4; d++ {
					if dirOK(d, u, v) {
						fmt.Fprintf(bw, " %s\n", cName(d, pr, u, v))
						stats.Variables++
					}
				}
			}
		}
	}
	fmt.Fprintln(bw, "End")
	return stats, bw.Flush()
}
