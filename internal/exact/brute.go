// Package exact provides an optimality baseline for MinEnergy(T) on small
// instances, playing the role of the Section 4.4 integer linear program that
// the paper solved with CPLEX (on platforms up to 2x2). Two artifacts are
// provided: an exhaustive solver over DAG-partitions, placements and speeds
// (this file), and an emitter that writes the paper's exact ILP in CPLEX LP
// format (ilp.go) for any external solver.
package exact

import (
	"errors"
	"fmt"

	"spgcmp/internal/core"
	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// ErrTooLarge is returned when the instance exceeds the exhaustive-search
// budget (the paper's ILP hit the same wall beyond 2x2 CMPs).
var ErrTooLarge = errors.New("exact: instance too large for exhaustive search")

// Solver enumerates every DAG-partition of the SPG (set partitions with an
// acyclic cluster quotient), every injective placement of the clusters onto
// cores, and assigns each core its slowest feasible speed; communications
// follow XY routing. The minimum-energy valid mapping is optimal under those
// routing and speed rules.
type Solver struct {
	// MaxStages bounds the graph size (Bell numbers grow fast).
	MaxStages int
	// MaxPlacements bounds the total number of (partition, placement) pairs
	// explored.
	MaxPlacements int
	// General drops the DAG-partition rule and searches over arbitrary
	// partitions (cyclic cluster quotients allowed), implementing the
	// paper's future-work comparison between general and DAG-partition
	// mappings. General solutions assume software-pipelined execution.
	General bool
}

// NewSolver returns a solver sized for the paper's exact experiments
// (n <= 10, 2x2 grids).
func NewSolver() *Solver {
	return &Solver{MaxStages: 12, MaxPlacements: 30_000_000}
}

// Name implements core.Heuristic.
func (s *Solver) Name() string {
	if s.General {
		return "Exact-General"
	}
	return "Exact"
}

// Solve implements core.Heuristic.
func (s *Solver) Solve(inst core.Instance) (*core.Solution, error) {
	// Reuse the caller's analysis cache when one is attached (a period sweep
	// built with core.NewInstance/WithPeriod then validates the graph only
	// once across the sweep); otherwise attach a private one for this call.
	inst = inst.Analyzed()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	n := g.N()
	if n > s.MaxStages {
		return nil, fmt.Errorf("%w: %d stages > %d", ErrTooLarge, n, s.MaxStages)
	}

	var best *core.Solution
	budget := s.MaxPlacements

	// Enumerate set partitions with restricted growth strings: part[i] is the
	// cluster of stage i, part[i] <= max(part[0..i-1]) + 1.
	part := make([]int, n)
	work := make([]float64, n)    // per-cluster work
	placeBuf := make([]int, 0, n) // cluster -> core permutation buffer
	maxCoreWork := T * pl.MaxSpeed()

	var evaluate func(k int)
	evaluate = func(k int) {
		if budget <= 0 {
			return
		}
		if k > pl.NumCores() {
			return
		}
		if !s.General && !quotientAcyclic(g, part, k) {
			return
		}
		// Try every injective placement of the k clusters.
		used := make([]bool, pl.NumCores())
		placeBuf = placeBuf[:0]
		var place func(c int)
		place = func(c int) {
			if budget <= 0 {
				return
			}
			if c == k {
				budget--
				m := buildMapping(g, pl, T, part, placeBuf)
				if m == nil {
					return
				}
				eval := mapping.Evaluate
				if s.General {
					eval = mapping.EvaluateGeneral
				}
				res, err := eval(g, pl, m, T)
				if err != nil {
					return
				}
				if best == nil || res.Energy < best.Result.Energy {
					best = &core.Solution{Heuristic: s.Name(), Mapping: m, Result: res}
				}
				return
			}
			for coreIdx := 0; coreIdx < pl.NumCores(); coreIdx++ {
				if used[coreIdx] {
					continue
				}
				used[coreIdx] = true
				placeBuf = append(placeBuf, coreIdx)
				place(c + 1)
				placeBuf = placeBuf[:len(placeBuf)-1]
				used[coreIdx] = false
			}
		}
		place(0)
	}

	var gen func(i, k int)
	gen = func(i, k int) {
		if budget <= 0 {
			return
		}
		if i == n {
			evaluate(k)
			return
		}
		w := g.Stages[i].Weight
		for c := 0; c <= k && c < pl.NumCores(); c++ {
			if work[c]+w > maxCoreWork {
				continue // the cluster could never meet the period
			}
			part[i] = c
			work[c] += w
			nk := k
			if c == k {
				nk = k + 1
			}
			gen(i+1, nk)
			work[c] -= w
		}
	}
	gen(0, 0)

	if budget <= 0 && best == nil {
		return nil, ErrTooLarge
	}
	if best == nil {
		return nil, core.ErrNoSolution
	}
	return best, nil
}

// quotientAcyclic checks the DAG-partition rule for a candidate partition.
func quotientAcyclic(g *spg.Graph, part []int, k int) bool {
	adj := make([][]bool, k)
	for i := range adj {
		adj[i] = make([]bool, k)
	}
	indeg := make([]int, k)
	for _, e := range g.Edges {
		a, b := part[e.Src], part[e.Dst]
		if a != b && !adj[a][b] {
			adj[a][b] = true
			indeg[b]++
		}
	}
	var queue []int
	for i := 0; i < k; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for w := 0; w < k; w++ {
			if adj[v][w] {
				indeg[w]--
				if indeg[w] == 0 {
					queue = append(queue, w)
				}
			}
		}
	}
	return seen == k
}

func buildMapping(g *spg.Graph, pl *platform.Platform, T float64, part, place []int) *mapping.Mapping {
	m := mapping.New(g.N(), pl)
	for i := range g.Stages {
		coreIdx := place[part[i]]
		m.Alloc[i] = platform.Core{U: coreIdx / pl.Q, V: coreIdx % pl.Q}
	}
	if !m.DowngradeSpeeds(g, pl, T) {
		return nil
	}
	return m
}

var _ core.Heuristic = (*Solver)(nil)
