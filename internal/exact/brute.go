// Package exact provides an optimality baseline for MinEnergy(T) on small
// instances, playing the role of the Section 4.4 integer linear program that
// the paper solved with CPLEX (on platforms up to 2x2). Two artifacts are
// provided: an exhaustive solver over DAG-partitions, placements and speeds
// (this file), and an emitter that writes the paper's exact ILP in CPLEX LP
// format (ilp.go) for any external solver.
package exact

import (
	"errors"
	"fmt"

	"spgcmp/internal/core"
	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// ErrTooLarge is returned when the instance exceeds the exhaustive-search
// budget (the paper's ILP hit the same wall beyond 2x2 CMPs).
var ErrTooLarge = errors.New("exact: instance too large for exhaustive search")

// Solver enumerates every DAG-partition of the SPG (set partitions with an
// acyclic cluster quotient), every injective placement of the clusters onto
// cores, and assigns each core its slowest feasible speed; communications
// follow XY routing. The minimum-energy valid mapping is optimal under those
// routing and speed rules.
type Solver struct {
	// MaxStages bounds the graph size (Bell numbers grow fast).
	MaxStages int
	// MaxPlacements bounds the total number of (partition, placement) pairs
	// explored.
	MaxPlacements int
	// General drops the DAG-partition rule and searches over arbitrary
	// partitions (cyclic cluster quotients allowed), implementing the
	// paper's future-work comparison between general and DAG-partition
	// mappings. General solutions assume software-pipelined execution.
	General bool
	// NoSymmetry disables the grid-symmetry placement reduction (see
	// gridSymmetries) and enumerates every injective placement, as the
	// solver originally did. The equivalence tests diff the two paths; it is
	// also an escape hatch should a future platform break the homogeneity
	// assumptions the reduction relies on.
	NoSymmetry bool
}

// NewSolver returns a solver sized for the paper's exact experiments
// (n <= 10, 2x2 grids).
func NewSolver() *Solver {
	return &Solver{MaxStages: 12, MaxPlacements: 30_000_000}
}

// Name implements core.Heuristic.
func (s *Solver) Name() string {
	if s.General {
		return "Exact-General"
	}
	return "Exact"
}

// Solve implements core.Heuristic.
func (s *Solver) Solve(inst core.Instance) (*core.Solution, error) {
	// Reuse the caller's analysis cache when one is attached (a period sweep
	// built with core.NewInstance/WithPeriod then validates the graph only
	// once across the sweep); otherwise attach a private one for this call.
	inst = inst.Analyzed()
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	n := g.N()
	if n > s.MaxStages {
		return nil, fmt.Errorf("%w: %d stages > %d", ErrTooLarge, n, s.MaxStages)
	}

	var best *core.Solution
	budget := s.MaxPlacements

	// Enumerate set partitions with restricted growth strings: part[i] is the
	// cluster of stage i, part[i] <= max(part[0..i-1]) + 1.
	part := make([]int, n)
	work := make([]float64, n)    // per-cluster work
	placeBuf := make([]int, 0, n) // cluster -> core permutation buffer
	maxCoreWork := T * pl.MaxSpeed()

	var syms [][]int
	if !s.NoSymmetry {
		syms = gridSymmetries(pl.P, pl.Q)
	}
	imgBuf := make([]int, n)
	allSyms := make([]int, len(syms))
	for i := range allSyms {
		allSyms[i] = i
	}
	// Per-depth scratch rows for the surviving-symmetry lists: active sets
	// only shrink down the tree and each row is rebuilt before the recursion
	// that reads it, so the exponential placement enumeration stays
	// allocation-free.
	activeBuf := make([][]int, pl.NumCores()+1)
	for i := range activeBuf {
		activeBuf[i] = make([]int, 0, len(syms))
	}

	eval := mapping.Evaluate
	if s.General {
		eval = mapping.EvaluateGeneral
	}

	var evaluate func(k int)
	evaluate = func(k int) {
		if budget <= 0 {
			return
		}
		if k > pl.NumCores() {
			return
		}
		if !s.General && !quotientAcyclic(g, part, k) {
			return
		}
		// consider evaluates one concrete placement and keeps the best valid
		// mapping; it reports whether the placement was valid.
		consider := func(pb []int) bool {
			m := buildMapping(g, pl, T, part, pb)
			if m == nil {
				return false
			}
			res, err := eval(g, pl, m, T)
			if err != nil {
				return false
			}
			if best == nil || res.Energy < best.Result.Energy {
				best = &core.Solution{Heuristic: s.Name(), Mapping: m, Result: res}
			}
			return true
		}
		// Try every injective placement of the k clusters, pruned to the
		// lexicographically minimal representative of each symmetry orbit:
		// active lists the symmetries whose image of the current prefix still
		// equals the prefix, so only they can decide canonicity deeper down.
		used := make([]bool, pl.NumCores())
		placeBuf = placeBuf[:0]
		var place func(c int, active []int)
		place = func(c int, active []int) {
			if budget <= 0 {
				return
			}
			if c == k {
				budget--
				if consider(placeBuf) {
					return
				}
				// Energy is symmetry-invariant (cores are homogeneous and XY
				// hop counts are Manhattan distances), but link-capacity
				// feasibility is not: a diagonal reflection turns XY routes
				// into YX routes, so a pruned-away orbit member can be valid
				// where the canonical one is not. Recover by evaluating the
				// rest of the orbit, only on this rare failure path.
				for _, perm := range syms {
					if budget <= 0 {
						return
					}
					budget--
					for ci, coreIdx := range placeBuf {
						imgBuf[ci] = perm[coreIdx]
					}
					consider(imgBuf[:k])
				}
				return
			}
			for coreIdx := 0; coreIdx < pl.NumCores(); coreIdx++ {
				if used[coreIdx] {
					continue
				}
				// A symmetry mapping this prefix to a lexicographically
				// smaller one proves every completion non-canonical; one
				// mapping it to a larger prefix can never overturn canonicity
				// below and drops out.
				nonCanonical := false
				child := activeBuf[c+1][:0]
				for _, si := range active {
					img := syms[si][coreIdx]
					if img < coreIdx {
						nonCanonical = true
						break
					}
					if img == coreIdx {
						child = append(child, si)
					}
				}
				if nonCanonical {
					continue
				}
				used[coreIdx] = true
				placeBuf = append(placeBuf, coreIdx)
				place(c+1, child)
				placeBuf = placeBuf[:len(placeBuf)-1]
				used[coreIdx] = false
			}
		}
		place(0, allSyms)
	}

	var gen func(i, k int)
	gen = func(i, k int) {
		if budget <= 0 {
			return
		}
		if i == n {
			evaluate(k)
			return
		}
		w := g.Stages[i].Weight
		for c := 0; c <= k && c < pl.NumCores(); c++ {
			if work[c]+w > maxCoreWork {
				continue // the cluster could never meet the period
			}
			part[i] = c
			work[c] += w
			nk := k
			if c == k {
				nk = k + 1
			}
			gen(i+1, nk)
			work[c] -= w
		}
	}
	gen(0, 0)

	if budget <= 0 && best == nil {
		return nil, ErrTooLarge
	}
	if best == nil {
		return nil, core.ErrNoSolution
	}
	return best, nil
}

// quotientAcyclic checks the DAG-partition rule for a candidate partition.
func quotientAcyclic(g *spg.Graph, part []int, k int) bool {
	adj := make([][]bool, k)
	for i := range adj {
		adj[i] = make([]bool, k)
	}
	indeg := make([]int, k)
	for _, e := range g.Edges {
		a, b := part[e.Src], part[e.Dst]
		if a != b && !adj[a][b] {
			adj[a][b] = true
			indeg[b]++
		}
	}
	var queue []int
	for i := 0; i < k; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for w := 0; w < k; w++ {
			if adj[v][w] {
				indeg[w]--
				if indeg[w] == 0 {
					queue = append(queue, w)
				}
			}
		}
	}
	return seen == k
}

// gridSymmetries returns the non-identity automorphisms of the p x q grid as
// core-index permutations: the axis flips (horizontal, vertical, both) and —
// on square grids — their compositions with the transpose, the full dihedral
// group of order 8. The enumeration prunes placements that are not the
// lexicographically minimal member of their orbit under these permutations,
// cutting the placement work by up to the group order (~1/8 on square grids,
// ~1/4 on rectangular ones): cores are homogeneous and hop counts are
// Manhattan distances, so every orbit member reaches the same energy.
// Degenerate permutations (a flip of a single-row grid is the identity) are
// deduplicated away.
func gridSymmetries(p, q int) [][]int {
	type xform func(u, v int) (int, int)
	var xfs []xform
	flips := []xform{
		func(u, v int) (int, int) { return u, v },
		func(u, v int) (int, int) { return p - 1 - u, v },
		func(u, v int) (int, int) { return u, q - 1 - v },
		func(u, v int) (int, int) { return p - 1 - u, q - 1 - v },
	}
	xfs = append(xfs, flips[1:]...)
	if p == q {
		for _, f := range flips {
			f := f
			xfs = append(xfs, func(u, v int) (int, int) { return f(v, u) })
		}
	}
	var perms [][]int
	seen := make(map[string]bool)
	id := make([]int, p*q)
	for i := range id {
		id[i] = i
	}
	seen[fmt.Sprint(id)] = true // never include the identity
	for _, f := range xfs {
		perm := make([]int, p*q)
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				nu, nv := f(u, v)
				perm[u*q+v] = nu*q + nv
			}
		}
		if key := fmt.Sprint(perm); !seen[key] {
			seen[key] = true
			perms = append(perms, perm)
		}
	}
	return perms
}

func buildMapping(g *spg.Graph, pl *platform.Platform, T float64, part, place []int) *mapping.Mapping {
	m := mapping.New(g.N(), pl)
	for i := range g.Stages {
		coreIdx := place[part[i]]
		m.Alloc[i] = platform.Core{U: coreIdx / pl.Q, V: coreIdx % pl.Q}
	}
	if !m.DowngradeSpeeds(g, pl, T) {
		return nil
	}
	return m
}

var _ core.Heuristic = (*Solver)(nil)
