package exact

import (
	"context"
	"fmt"

	"spgcmp/internal/core"
	"spgcmp/internal/mapping"
	"spgcmp/internal/platform"
	"spgcmp/internal/spg"
)

// solveExhaustive is the plain enumeration engine: every DAG-partition by
// restricted growth strings, every injective placement (symmetry-reduced
// unless NoSymmetry), no lower bounds. MaxPlacements is a global best-effort
// budget: when it runs out the best mapping found so far is returned, or
// ErrTooLarge when there is none. It is the baseline the branch-and-bound
// engine is proven bit-identical against.
func (s *Solver) solveExhaustive(ctx context.Context, inst core.Instance, st *Stats) (*core.Solution, error) {
	g, pl, T := inst.Graph, inst.Platform, inst.Period
	n := g.N()

	var best *core.Solution
	budget := s.MaxPlacements
	st.Units, st.Workers = 1, 1

	// Cancellation: the recursions poll ctx every ctxCheckMask+1 leaves and
	// unwind through the same early returns the budget uses.
	stopped := false
	tick := 0
	checkCtx := func() bool {
		if stopped {
			return true
		}
		tick++
		if tick&ctxCheckMask == 0 && ctx.Err() != nil {
			stopped = true
		}
		return stopped
	}

	// Enumerate set partitions with restricted growth strings: part[i] is the
	// cluster of stage i, part[i] <= max(part[0..i-1]) + 1.
	part := make([]int, n)
	work := make([]float64, n)    // per-cluster work
	placeBuf := make([]int, 0, n) // cluster -> core permutation buffer
	maxCoreWork := T * pl.MaxSpeed()

	var syms [][]int
	if !s.NoSymmetry {
		syms = gridSymmetries(pl.P, pl.Q)
	}
	imgBuf := make([]int, n)
	allSyms := make([]int, len(syms))
	for i := range allSyms {
		allSyms[i] = i
	}
	// Per-depth scratch rows for the surviving-symmetry lists: active sets
	// only shrink down the tree and each row is rebuilt before the recursion
	// that reads it, so the exponential placement enumeration stays
	// allocation-free.
	activeBuf := make([][]int, pl.NumCores()+1)
	for i := range activeBuf {
		activeBuf[i] = make([]int, 0, len(syms))
	}

	eval := mapping.Evaluate
	if s.General {
		eval = mapping.EvaluateGeneral
	}

	var evaluate func(k int)
	evaluate = func(k int) {
		if budget <= 0 || checkCtx() {
			return
		}
		if k > pl.NumCores() {
			return
		}
		if !s.General && !quotientAcyclic(g, part, k) {
			return
		}
		// consider evaluates one concrete placement and keeps the best valid
		// mapping; it reports whether the placement was valid.
		consider := func(pb []int) bool {
			m := buildMapping(g, pl, T, part, pb)
			if m == nil {
				return false
			}
			res, err := eval(g, pl, m, T)
			if err != nil {
				return false
			}
			if best == nil || res.Energy < best.Result.Energy {
				best = &core.Solution{Heuristic: s.Name(), Mapping: m, Result: res}
			}
			return true
		}
		// Try every injective placement of the k clusters, pruned to the
		// lexicographically minimal representative of each symmetry orbit:
		// active lists the symmetries whose image of the current prefix still
		// equals the prefix, so only they can decide canonicity deeper down.
		used := make([]bool, pl.NumCores())
		placeBuf = placeBuf[:0]
		var place func(c int, active []int)
		place = func(c int, active []int) {
			if budget <= 0 || checkCtx() {
				return
			}
			if c == k {
				budget--
				st.Placements++
				if consider(placeBuf) {
					return
				}
				// Energy is symmetry-invariant (cores are homogeneous and XY
				// hop counts are Manhattan distances), but link-capacity
				// feasibility is not: a diagonal reflection turns XY routes
				// into YX routes, so a pruned-away orbit member can be valid
				// where the canonical one is not. Recover by evaluating the
				// rest of the orbit, only on this rare failure path.
				for _, perm := range syms {
					if budget <= 0 {
						return
					}
					budget--
					st.Placements++
					for ci, coreIdx := range placeBuf {
						imgBuf[ci] = perm[coreIdx]
					}
					consider(imgBuf[:k])
				}
				return
			}
			for coreIdx := 0; coreIdx < pl.NumCores(); coreIdx++ {
				if used[coreIdx] {
					continue
				}
				// A symmetry mapping this prefix to a lexicographically
				// smaller one proves every completion non-canonical; one
				// mapping it to a larger prefix can never overturn canonicity
				// below and drops out.
				nonCanonical := false
				child := activeBuf[c+1][:0]
				for _, si := range active {
					img := syms[si][coreIdx]
					if img < coreIdx {
						nonCanonical = true
						break
					}
					if img == coreIdx {
						child = append(child, si)
					}
				}
				if nonCanonical {
					continue
				}
				used[coreIdx] = true
				placeBuf = append(placeBuf, coreIdx)
				place(c+1, child)
				placeBuf = placeBuf[:len(placeBuf)-1]
				used[coreIdx] = false
			}
		}
		place(0, allSyms)
	}

	var gen func(i, k int)
	gen = func(i, k int) {
		if budget <= 0 || stopped {
			return
		}
		if i == n {
			evaluate(k)
			return
		}
		w := g.Stages[i].Weight
		for c := 0; c <= k && c < pl.NumCores(); c++ {
			if work[c]+w > maxCoreWork {
				continue // the cluster could never meet the period
			}
			part[i] = c
			// Save/restore instead of += / -=: float addition does not cancel
			// exactly, and a history-dependent residue in work[c] could flip a
			// marginal feasibility verdict. With restoration, work[c] is a
			// pure function of the current partition prefix — the invariant
			// the branch-and-bound engine's prefix replay relies on.
			old := work[c]
			work[c] = old + w
			nk := k
			if c == k {
				nk = k + 1
			}
			gen(i+1, nk)
			work[c] = old
		}
	}
	gen(0, 0)

	if stopped {
		return nil, ctx.Err()
	}
	st.Truncated = budget <= 0
	if budget <= 0 && best == nil {
		return nil, ErrTooLarge
	}
	if best == nil {
		return nil, core.ErrNoSolution
	}
	return best, nil
}

// ctxCheckMask throttles context polling in the enumeration hot loops: the
// check runs every mask+1 visits, keeping cancellation latency far below any
// service deadline at negligible cost.
const ctxCheckMask = 1023

// quotientAcyclic checks the DAG-partition rule for a candidate partition.
func quotientAcyclic(g *spg.Graph, part []int, k int) bool {
	adj := make([][]bool, k)
	for i := range adj {
		adj[i] = make([]bool, k)
	}
	indeg := make([]int, k)
	for _, e := range g.Edges {
		a, b := part[e.Src], part[e.Dst]
		if a != b && !adj[a][b] {
			adj[a][b] = true
			indeg[b]++
		}
	}
	var queue []int
	for i := 0; i < k; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		seen++
		for w := 0; w < k; w++ {
			if adj[v][w] {
				indeg[w]--
				if indeg[w] == 0 {
					queue = append(queue, w)
				}
			}
		}
	}
	return seen == k
}

// gridSymmetries returns the non-identity automorphisms of the p x q grid as
// core-index permutations: the axis flips (horizontal, vertical, both) and —
// on square grids — their compositions with the transpose, the full dihedral
// group of order 8. The enumeration prunes placements that are not the
// lexicographically minimal member of their orbit under these permutations,
// cutting the placement work by up to the group order (~1/8 on square grids,
// ~1/4 on rectangular ones): cores are homogeneous and hop counts are
// Manhattan distances, so every orbit member reaches the same energy.
// Degenerate permutations (a flip of a single-row grid is the identity) are
// deduplicated away.
func gridSymmetries(p, q int) [][]int {
	type xform func(u, v int) (int, int)
	var xfs []xform
	flips := []xform{
		func(u, v int) (int, int) { return u, v },
		func(u, v int) (int, int) { return p - 1 - u, v },
		func(u, v int) (int, int) { return u, q - 1 - v },
		func(u, v int) (int, int) { return p - 1 - u, q - 1 - v },
	}
	xfs = append(xfs, flips[1:]...)
	if p == q {
		for _, f := range flips {
			f := f
			xfs = append(xfs, func(u, v int) (int, int) { return f(v, u) })
		}
	}
	var perms [][]int
	seen := make(map[string]bool)
	id := make([]int, p*q)
	for i := range id {
		id[i] = i
	}
	seen[fmt.Sprint(id)] = true // never include the identity
	for _, f := range xfs {
		perm := make([]int, p*q)
		for u := 0; u < p; u++ {
			for v := 0; v < q; v++ {
				nu, nv := f(u, v)
				perm[u*q+v] = nu*q + nv
			}
		}
		if key := fmt.Sprint(perm); !seen[key] {
			seen[key] = true
			perms = append(perms, perm)
		}
	}
	return perms
}

func buildMapping(g *spg.Graph, pl *platform.Platform, T float64, part, place []int) *mapping.Mapping {
	m := mapping.New(g.N(), pl)
	for i := range g.Stages {
		coreIdx := place[part[i]]
		m.Alloc[i] = platform.Core{U: coreIdx / pl.Q, V: coreIdx % pl.Q}
	}
	if !m.DowngradeSpeeds(g, pl, T) {
		return nil
	}
	return m
}
