// Package exact provides an optimality baseline for MinEnergy(T) on small
// instances, playing the role of the Section 4.4 integer linear program that
// the paper solved with CPLEX (on platforms up to 2x2). Three artifacts are
// provided: a branch-and-bound solver over DAG-partitions, placements and
// speeds (bnb.go) with admissible energy lower bounds, heuristic incumbent
// seeding and parallel subtree search; the plain exhaustive enumeration it
// grew out of (brute.go), kept as the equivalence baseline and escape hatch;
// and an emitter that writes the paper's exact ILP in CPLEX LP format
// (ilp.go) for any external solver.
package exact

import (
	"context"
	"errors"
	"fmt"

	"spgcmp/internal/core"
)

// ErrTooLarge is returned when the instance exceeds the search budget (the
// paper's ILP hit the same wall beyond 2x2 CMPs).
var ErrTooLarge = errors.New("exact: instance too large for exhaustive search")

// Solver finds the minimum-energy valid mapping among every DAG-partition of
// the SPG (set partitions with an acyclic cluster quotient), every injective
// placement of the clusters onto cores, and the slowest feasible speed per
// core; communications follow XY routing. The default engine is a
// branch-and-bound search (bnb.go) that prunes on admissible energy lower
// bounds, seeds its incumbent from the cheap heuristics, and fans partition
// prefixes across a worker pool; it returns results bit-identical to the
// exhaustive enumeration at any worker count.
type Solver struct {
	// MaxStages bounds the graph size (Bell numbers grow fast).
	MaxStages int
	// MaxPlacements bounds the number of complete (partition, placement)
	// pairs evaluated. The exhaustive engine treats it as a global budget
	// and returns its best-so-far when exhausted; branch-and-bound applies
	// it per search unit and returns ErrTooLarge whenever any unit
	// truncates, so it never passes off an unproven mapping as optimal.
	MaxPlacements int
	// General drops the DAG-partition rule and searches over arbitrary
	// partitions (cyclic cluster quotients allowed), implementing the
	// paper's future-work comparison between general and DAG-partition
	// mappings. General solutions assume software-pipelined execution.
	General bool
	// NoSymmetry disables the grid-symmetry placement reduction (see
	// gridSymmetries) and enumerates every injective placement, as the
	// solver originally did. The equivalence tests diff the two paths; it is
	// also an escape hatch should a future platform break the homogeneity
	// assumptions the reduction relies on.
	NoSymmetry bool
	// Exhaustive disables branch-and-bound and runs the plain enumeration:
	// no lower bounds, no incumbent seeding, single-threaded. It is the
	// baseline the equivalence tests and benchmarks diff the default engine
	// against.
	Exhaustive bool
	// Workers is the branch-and-bound worker-pool size; 0 uses GOMAXPROCS.
	// Results are bit-identical at any setting.
	Workers int
	// NoSeed disables the heuristic incumbent seeding pass. Seeding only
	// strengthens pruning — the seed mapping is never returned — so this is
	// purely a diagnostics/benchmarking knob.
	NoSeed bool
	// Seed drives the Random heuristic inside the seeding pass (0 means 1).
	// It affects pruning strength only, never the result.
	Seed int64
}

// NewSolver returns a solver sized for the paper's exact experiments
// (n <= 10, 2x2 grids) and the grid frontier the bounds unlock (3x3, 4x3).
func NewSolver() *Solver {
	return &Solver{MaxStages: 12, MaxPlacements: 30_000_000}
}

// Name implements core.Heuristic.
func (s *Solver) Name() string {
	if s.General {
		return "Exact-General"
	}
	return "Exact"
}

// Stats reports how a solve went: how much of the search tree was evaluated,
// how much the bounds removed, and whether the budget truncated anything.
type Stats struct {
	// Placements counts the complete placements evaluated, orbit-recovery
	// members included — the budget unit.
	Placements int64
	// PrunedPartitions counts partition-tree nodes cut by the partition-side
	// lower bound (each cuts its whole subtree).
	PrunedPartitions int64
	// PrunedPlacements counts placement-tree nodes cut by the prefix energy
	// bound.
	PrunedPlacements int64
	// Units and Workers describe the parallel decomposition (1/0 for the
	// exhaustive engine).
	Units, Workers int
	// Seeded reports whether a heuristic incumbent was installed; SeedEnergy
	// is its energy.
	Seeded     bool
	SeedEnergy float64
	// Truncated reports that the placement budget was exhausted somewhere.
	Truncated bool
}

// Solve implements core.Heuristic. It is the compatibility shim over
// SolveContext for interface callers that have no deadline to propagate.
func (s *Solver) Solve(inst core.Instance) (*core.Solution, error) {
	//spglint:ignore ctxflow core.Heuristic compatibility shim; deadline-aware callers use SolveContext
	return s.SolveContext(context.Background(), inst)
}

// SolveContext is Solve with cancellation: the enumeration loops poll ctx
// periodically and the search returns ctx's error as soon as it fires, so
// service deadlines propagate into the exact path.
func (s *Solver) SolveContext(ctx context.Context, inst core.Instance) (*core.Solution, error) {
	sol, _, err := s.SolveStats(ctx, inst)
	return sol, err
}

// SolveStats is SolveContext, additionally reporting search statistics.
func (s *Solver) SolveStats(ctx context.Context, inst core.Instance) (*core.Solution, Stats, error) {
	var st Stats
	// Reuse the caller's analysis cache when one is attached (a period sweep
	// built with core.NewInstance/WithPeriod then validates the graph only
	// once across the sweep); otherwise attach a private one for this call.
	inst = inst.Analyzed()
	if err := inst.Validate(); err != nil {
		return nil, st, err
	}
	if n := inst.Graph.N(); n > s.MaxStages {
		return nil, st, fmt.Errorf("%w: %d stages > %d", ErrTooLarge, n, s.MaxStages)
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	if s.Exhaustive {
		sol, err := s.solveExhaustive(ctx, inst, &st)
		return sol, st, err
	}
	sol, err := s.solveBnB(ctx, inst, &st)
	return sol, st, err
}

var _ core.Heuristic = (*Solver)(nil)
